// Fixed-point quantization helpers.
//
// The FPGA resource model (src/fpga) and the integer inference backend
// (src/dsp/quantized_frontend, src/nn/quantized_mlp) both need
// ap_fixed-style rounding: a signed two's-complement value with
// `total_bits` bits, `frac_bits` of which sit right of the binary point
// (mirrors Vivado HLS ap_fixed<W,I>). All rounding here is explicit
// round-half-even — results do not depend on the runtime FP rounding mode.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

namespace mlqr {

/// Describes an ap_fixed<W, W-F>-style signed fixed-point format.
struct FixedPointFormat {
  int total_bits = 16;  ///< W: total width including sign.
  int frac_bits = 10;   ///< F: fractional bits.

  double resolution() const;   ///< Smallest representable step (2^-F).
  double max_value() const;    ///< Largest representable value.
  double min_value() const;    ///< Most negative representable value.
  std::int64_t max_code() const;  ///< Largest integer code (2^(W-1)-1).
  std::int64_t min_code() const;  ///< Most negative code (-2^(W-1)).
};

/// Precision knobs shared by the integer inference backend: code widths for
/// weights/kernels, inter-stage activations, and the MAC accumulator, plus
/// how many shots the range calibration reads.
struct QuantizationConfig {
  int weight_bits = 16;      ///< NN weight and matched-filter kernel codes.
  int activation_bits = 16;  ///< Feature / inter-layer activation codes.
  int accum_bits = 32;       ///< Saturating MAC accumulator width.
  /// Range calibration reads at most this many calibration shots.
  std::size_t max_calibration_shots = 512;
};

/// Rounds to the nearest integer, ties to even. Unlike std::nearbyint the
/// result is independent of the runtime FP rounding mode (fesetround).
double round_half_even(double value);

/// Nearest integer code for `value`, saturating at the format bounds.
std::int64_t to_code(double value, const FixedPointFormat& fmt);

/// Real value of an integer code (code * 2^-F).
double from_code(std::int64_t code, const FixedPointFormat& fmt);

/// Clamps an integer code into the signed two's-complement range of `bits`
/// (the saturating behaviour of an ap_fixed accumulator).
std::int64_t saturate_to_bits(std::int64_t code, int bits);

/// Drops `shift` fractional bits from a fixed-point code with
/// round-half-even (the inter-layer requantization step of the integer
/// MLP). `shift` < 0 shifts left. Deterministic, no FP involved.
std::int64_t shift_round_half_even(std::int64_t code, int shift);

/// Rounds to nearest representable value, saturating at the format bounds.
double quantize(double value, const FixedPointFormat& fmt);

/// Quantizes a whole buffer in place.
void quantize_in_place(std::span<float> values, const FixedPointFormat& fmt);

/// Worst-case absolute quantization error over a buffer (for tests and the
/// quantization-impact ablation).
double max_quantization_error(std::span<const float> values,
                              const FixedPointFormat& fmt);

/// Picks the smallest fractional width (given total bits) such that every
/// value in [lo, hi] fits without saturation. Throws when no such format
/// exists (|bound| needs more than total_bits-1 integer bits) instead of
/// silently returning a saturating format.
FixedPointFormat fit_format(double lo, double hi, int total_bits);

/// Like fit_format but never throws: when the range cannot fit at the given
/// width it spends every integer bit and lets values clip at the format
/// bounds — the deployed activation-path behaviour, where saturating
/// outliers beats failing synthesis.
FixedPointFormat saturating_format(double lo, double hi, int total_bits);

/// Binary little-endian persistence of a format descriptor — one leaf of
/// the calibration snapshot layer (common/serialize.h). load_format throws
/// mlqr::Error on truncation or an out-of-range width.
void save_format(std::ostream& os, const FixedPointFormat& fmt);
FixedPointFormat load_format(std::istream& is);

/// Same for the precision-knob bundle the quantized backends carry.
void save_quantization_config(std::ostream& os, const QuantizationConfig& cfg);
QuantizationConfig load_quantization_config(std::istream& is);

}  // namespace mlqr
