#include "common/env.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/annotations.h"

namespace mlqr {

bool fast_mode() {
  static const bool fast = [] {
    const char* env = std::getenv("MLQR_FAST");
    return env != nullptr && env[0] == '1';
  }();
  return fast;
}

std::optional<std::int64_t> parse_int_strict(const char* text) {
  if (text == nullptr || text[0] == '\0') return std::nullopt;
  std::int64_t value = 0;
  const char* end = text + std::strlen(text);
  const auto [ptr, ec] = std::from_chars(text, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr || env[0] == '\0') return fallback;
  const std::optional<std::int64_t> v = parse_int_strict(env);
  if (!v) {
    // A malformed knob silently running at the default would record bench
    // results for a configuration the user never asked for. Latched like
    // resolve_thread_count's warning: one line, not one per read.
    static WarnOnce warned;
    if (warned.first())
      std::fprintf(stderr,
                   "[mlqr] ignoring malformed %s=\"%s\" (want an integer); "
                   "using %lld\n",
                   name.c_str(), env, static_cast<long long>(fallback));
    return fallback;
  }
  return *v;
}

std::size_t fast_scaled(std::size_t n, std::size_t divisor, std::size_t lo) {
  if (!fast_mode()) return n;
  return std::max(lo, n / std::max<std::size_t>(divisor, 1));
}

}  // namespace mlqr
