#include "common/env.h"

#include <algorithm>
#include <cstdlib>

namespace mlqr {

bool fast_mode() {
  static const bool fast = [] {
    const char* env = std::getenv("MLQR_FAST");
    return env != nullptr && env[0] == '1';
  }();
  return fast;
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const char* env = std::getenv(name.c_str());
  if (env == nullptr || env[0] == '\0') return fallback;
  return std::atoll(env);
}

std::size_t fast_scaled(std::size_t n, std::size_t divisor, std::size_t lo) {
  if (!fast_mode()) return n;
  return std::max(lo, n / std::max<std::size_t>(divisor, 1));
}

}  // namespace mlqr
