// Compile-time concurrency contracts: Clang Thread Safety Analysis macros
// and annotated wrappers over the std locking primitives.
//
// Every locking invariant in the serving stack ("jobs_ and stop_ guarded
// by mutex_", "pending swaps drained before the next dispatcher claim")
// used to live only in comments, checked dynamically by whichever
// interleavings TSan happened to hit. The MLQR_* macros below turn those
// comments into attributes Clang proves at compile time: a member declared
// MLQR_GUARDED_BY(mutex_) cannot be touched without holding mutex_, a
// helper declared MLQR_REQUIRES(mutex_) cannot be called without it, and
// the Clang CI legs build with -Werror=thread-safety so a missing lock is
// a build failure, not a race CI may or may not reproduce. On GCC/MSVC
// every macro expands to nothing — the wrappers compile to exactly the
// std primitives they wrap.
//
// What the analysis does NOT guarantee (see also README "Static analysis
// & concurrency contracts"):
//   * No alias tracking: a reference or pointer obtained under the lock
//     can be dereferenced after unlock without a warning. The streaming
//     engine's ring-slot custody hand-off (producers fill kReserved slots,
//     the dispatcher reads kInFlight slots, both outside the lock) lives
//     in exactly that blind spot and stays covered by TSan + the
//     state-machine comments in pipeline/streaming_engine.h.
//   * No cross-thread happens-before for atomics: WarnOnce and friends
//     are outside the capability model entirely.
//   * Constructors and destructors are not analyzed (an object under
//     construction is single-threaded by definition).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

// Clang implements the analysis; GCC and MSVC accept the code with the
// attributes compiled out. (SWIG and other tooling parsers also get the
// empty expansion.)
#if defined(__clang__) && !defined(SWIG)
#define MLQR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define MLQR_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares a class to be a lockable capability (e.g. a mutex type).
#define MLQR_CAPABILITY(x) MLQR_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define MLQR_SCOPED_CAPABILITY MLQR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define MLQR_GUARDED_BY(x) MLQR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose pointee is protected by the capability.
#define MLQR_PT_GUARDED_BY(x) MLQR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the capabilities.
#define MLQR_REQUIRES(...) \
  MLQR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capabilities and holds them on return.
#define MLQR_ACQUIRE(...) \
  MLQR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases capabilities held on entry.
#define MLQR_RELEASE(...) \
  MLQR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `result`.
#define MLQR_TRY_ACQUIRE(result, ...) \
  MLQR_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Function the caller must NOT hold the capabilities around (documents
/// non-reentrancy: the function acquires them itself).
#define MLQR_EXCLUDES(...) MLQR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the named capability.
#define MLQR_RETURN_CAPABILITY(x) MLQR_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Unused in this
/// codebase (the CI gate runs with zero suppressions); provided so a
/// future genuine false positive has a named, greppable escape.
#define MLQR_NO_THREAD_SAFETY_ANALYSIS \
  MLQR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace mlqr {

/// std::mutex with the capability annotation: everything declared
/// MLQR_GUARDED_BY(a Mutex) is compile-time checked under Clang.
class MLQR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MLQR_ACQUIRE() { mu_.lock(); }
  void unlock() MLQR_RELEASE() { mu_.unlock(); }
  bool try_lock() MLQR_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a Mutex, relockable: unlock()/lock() release and
/// re-acquire mid-scope (the streaming submit path copies frames outside
/// the lock), and the destructor releases only if currently held. Clang
/// tracks the held/released state through every branch.
class MLQR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MLQR_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() MLQR_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Re-acquires after unlock(). Must not be held.
  void lock() MLQR_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

  /// Releases before scope exit. Must be held.
  void unlock() MLQR_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

  bool owns_lock() const { return held_; }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable paired with mlqr::Mutex. The capability-annotated
/// waits make "which lock guards this predicate" part of the signature:
/// wait(mu) can only be called with mu held, and the caller still holds
/// it on return. Waits without a predicate are intentionally bare — every
/// call site owns its predicate loop (spurious wakeups re-check under the
/// same capability), or uses the predicate overload which loops here.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Atomically releases mu, sleeps, and re-acquires mu before returning.
  /// May wake spuriously: callers loop on their predicate.
  void wait(Mutex& mu) MLQR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // The caller's MutexLock still owns the mutex.
  }

  /// Predicate form: returns with pred() true and mu held. Re-checks the
  /// predicate after every wakeup (pinned by tests/test_annotations.cpp).
  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) MLQR_REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  /// Timed wait; returns std::cv_status::timeout when `deadline` passed.
  /// Callers re-check their predicate either way.
  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      MLQR_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

 private:
  std::condition_variable cv_;
};

/// One-shot latch for warn-once diagnostics (malformed env knobs etc.).
/// Replaces the per-site `static std::atomic<bool> warned` pattern so the
/// repo's lock-free shared state lives behind one audited type instead of
/// ad-hoc atomics. Outside the capability model by design: relaxed order
/// is enough because the latch guards only *which* caller prints, never
/// any data the racing threads share.
class WarnOnce {
 public:
  /// True for exactly one caller across all threads, ever.
  bool first() noexcept {
    return !fired_.exchange(true, std::memory_order_relaxed);
  }

  bool fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> fired_{false};
};

}  // namespace mlqr
