// Deterministic, fast pseudo-random number generation.
//
// mlqr experiments must be reproducible run-to-run, so every stochastic
// component receives an Rng seeded from the experiment configuration rather
// than from global state. The generator is xoshiro256++ (Blackman/Vigna),
// seeded through SplitMix64 so correlated small seeds still decorrelate.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mlqr {

/// xoshiro256++ PRNG with convenience samplers for the distributions used
/// across the simulator and trainers. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Raw 64 bits.
  std::uint64_t operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) — n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Samples an index from unnormalized non-negative weights.
  /// Throws if the weight sum is not positive.
  std::size_t discrete(std::span<const double> weights);

  /// Exponentially distributed waiting time with the given rate (>0).
  double exponential(double rate);

  /// Fisher–Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child generator (for per-thread / per-shot
  /// streams) without consuming much parent state.
  Rng split();

 private:
  std::uint64_t next();

  std::uint64_t s_[4]{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace mlqr
