#include "readout/design_presets.h"

#include <cmath>

#include "common/error.h"
#include "discrim/joint_label.h"

namespace mlqr {

namespace {
std::vector<std::size_t> head_sizes(std::size_t input, std::size_t output) {
  return {input, std::max<std::size_t>(input / 2, 4),
          std::max<std::size_t>(input / 4, 4), output};
}
}  // namespace

DesignSpec proposed_design_spec(std::size_t n_qubits, int n_levels,
                                std::size_t kernel_len) {
  MLQR_CHECK(n_qubits > 0 && n_levels >= 2);
  DesignSpec spec;
  spec.name = "OURS";
  spec.demod_channels = n_qubits;
  // k*(k-1)/2 filters per group x 3 groups (QMF/RMF/EMF): 9 at k=3.
  const std::size_t per_q =
      3 * (static_cast<std::size_t>(n_levels) *
           (static_cast<std::size_t>(n_levels) - 1) / 2);
  spec.matched_filters = n_qubits * per_q;
  spec.mf_kernel_len = kernel_len;
  const std::size_t feat = spec.matched_filters;  // Merged features.
  for (std::size_t q = 0; q < n_qubits; ++q)
    spec.nns.push_back(head_sizes(feat, static_cast<std::size_t>(n_levels)));
  spec.hls.weight_bits = 8;
  spec.hls.reuse_factor = 1;
  return spec;
}

DesignSpec herqules_design_spec(std::size_t n_qubits, int n_levels,
                                std::size_t kernel_len) {
  MLQR_CHECK(n_qubits > 0 && n_levels >= 2);
  DesignSpec spec;
  spec.name = "HERQULES";
  spec.demod_channels = n_qubits;
  const std::size_t per_q =
      n_levels >= 3 ? 6 : 2;  // QMF+RMF pairs; 2 in the two-level original.
  spec.matched_filters = n_qubits * per_q;
  spec.mf_kernel_len = kernel_len;
  const std::size_t input = spec.matched_filters;
  spec.nns.push_back(
      {input, 60, 120, joint_class_count(n_qubits, n_levels)});
  spec.hls.weight_bits = 8;
  spec.hls.reuse_factor = 1;
  return spec;
}

DesignSpec fnn_design_spec(std::size_t n_qubits, int n_levels,
                           std::size_t samples) {
  MLQR_CHECK(samples > 0);
  DesignSpec spec;
  spec.name = "FNN";
  spec.demod_channels = 0;
  spec.matched_filters = 0;
  spec.mf_kernel_len = 0;
  spec.nns.push_back(
      {2 * samples, 500, 250, joint_class_count(n_qubits, n_levels)});
  spec.hls.weight_bits = 8;
  spec.hls.reuse_factor = 1;
  return spec;
}

DesignSpec fnn_folded_design_spec(std::size_t n_qubits, int n_levels,
                                  std::size_t samples,
                                  const FpgaDevice& device) {
  DesignSpec spec = fnn_design_spec(n_qubits, n_levels, samples);
  spec.name = "FNN(folded)";
  // Fold the *total* MAC count onto the device DSP budget (the layers
  // share the array in a dataflow schedule).
  std::size_t total_macs = 0;
  for (const auto& sizes : spec.nns)
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l)
      total_macs += sizes[l] * sizes[l + 1];
  spec.hls.reuse_factor = static_cast<int>(
      std::ceil(static_cast<double>(total_macs) /
                static_cast<double>(device.dsps)));
  spec.hls.weights_in_bram = true;
  // Per-layer ceil() rounding can spill a couple of DSPs past the budget;
  // bump the reuse factor until the folded design truly fits.
  while (estimate_design(spec).dsps > static_cast<double>(device.dsps))
    ++spec.hls.reuse_factor;
  return spec;
}

}  // namespace mlqr
