#include "readout/dataset.h"

#include <algorithm>
#include <map>

#include "cluster/leakage_labeler.h"
#include "common/error.h"
#include "common/parallel.h"
#include "dsp/demodulator.h"
#include "dsp/filters.h"
#include "sim/readout_simulator.h"

namespace mlqr {

ReadoutDataset generate_dataset(const DatasetConfig& cfg) {
  MLQR_CHECK(cfg.shots_per_basis_state >= 4);
  MLQR_CHECK(cfg.train_fraction > 0.0 && cfg.train_fraction < 1.0);

  ReadoutDataset ds;
  ds.chip = cfg.chip;
  const std::size_t n_qubits = cfg.chip.num_qubits();
  const std::size_t n_basis = std::size_t{1} << n_qubits;

  // ---- Simulate every computational basis preparation. ----
  std::vector<std::vector<int>> prepared;
  prepared.reserve(n_basis * cfg.shots_per_basis_state);
  for (std::size_t b = 0; b < n_basis; ++b) {
    std::vector<int> state(n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q)
      state[q] = (b >> q) & 1u ? 1 : 0;
    for (std::size_t s = 0; s < cfg.shots_per_basis_state; ++s)
      prepared.push_back(state);
  }

  ReadoutSimulator sim(cfg.chip);
  std::vector<ShotRecord> records = sim.simulate_batch(prepared, cfg.seed);

  const std::size_t n_shots = records.size();
  ds.shots.n_qubits = n_qubits;
  ds.shots.traces.resize(n_shots);
  ds.shots.labels.resize(n_shots * n_qubits);
  for (std::size_t s = 0; s < n_shots; ++s) {
    ds.shots.traces[s] = std::move(records[s].trace);
    for (std::size_t q = 0; q < n_qubits; ++q)
      ds.shots.labels[s * n_qubits + q] = records[s].label[q];
  }

  // ---- Label mining: spectral clustering on per-qubit MTV points. ----
  ds.training_labels.assign(ds.shots.labels.begin(), ds.shots.labels.end());
  ds.mined_leakage_per_qubit.assign(n_qubits, 0);
  ds.label_accuracy_per_qubit.assign(n_qubits, 1.0);

  if (cfg.use_clustered_labels) {
    const Demodulator demod(cfg.chip);
    for (std::size_t q = 0; q < n_qubits; ++q) {
      std::vector<std::complex<double>> mtv(n_shots);
      parallel_for(0, n_shots, [&](std::size_t s) {
        mtv[s] = mean_trace_value(demod.demodulate(ds.shots.traces[s], q, 0));
      });
      std::vector<int> prep_bits(n_shots);
      for (std::size_t s = 0; s < n_shots; ++s)
        prep_bits[s] = prepared[s][q];

      const LeakageLabeling labeling = label_natural_leakage(mtv, prep_bits);

      // The experimenter *knows* the prepared computational label; the
      // clustering only contributes the leakage tag (paper SSV-A). Traces
      // not tagged |2> keep their preparation label, so relaxed traces
      // remain labeled with their initial state — which is what the
      // relaxation matched filters train on.
      ds.mined_leakage_per_qubit[q] = labeling.leakage_count;
      std::size_t agree = 0;
      for (std::size_t s = 0; s < n_shots; ++s) {
        const int est = labeling.levels[s] == 2 ? 2 : prep_bits[s];
        ds.training_labels[s * n_qubits + q] = est;
        if (est == ds.shots.labels[s * n_qubits + q]) ++agree;
      }
      ds.label_accuracy_per_qubit[q] =
          static_cast<double>(agree) / static_cast<double>(n_shots);
    }
  }

  // ---- Stratified 30-70 split: per (basis state, any-mined-leak) group
  // so that the rare leakage traces split proportionally. ----
  std::map<std::pair<std::size_t, bool>, std::vector<std::size_t>> groups;
  for (std::size_t s = 0; s < n_shots; ++s) {
    const std::size_t basis = s / cfg.shots_per_basis_state;
    bool leaked = false;
    for (std::size_t q = 0; q < n_qubits && !leaked; ++q)
      leaked = ds.training_labels[s * n_qubits + q] == 2;
    groups[{basis, leaked}].push_back(s);
  }
  Rng split_rng(cfg.seed ^ 0xbb67ae8584caa73bULL);
  for (auto& [key, members] : groups) {
    for (std::size_t i = members.size(); i > 1; --i)
      std::swap(members[i - 1], members[split_rng.uniform_index(i)]);
    const std::size_t n_train = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg.train_fraction *
                                    static_cast<double>(members.size())));
    for (std::size_t i = 0; i < members.size(); ++i)
      (i < n_train ? ds.train_idx : ds.test_idx).push_back(members[i]);
  }
  std::sort(ds.train_idx.begin(), ds.train_idx.end());
  std::sort(ds.test_idx.begin(), ds.test_idx.end());
  ds.shots.validate();
  return ds;
}

}  // namespace mlqr
