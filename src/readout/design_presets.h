// FPGA DesignSpec presets for the three readout architectures, derived
// from the paper's topologies (Fig 2, Fig 4). Used by the Fig 1(d) /
// Fig 5(a) / power / latency benches.
#pragma once

#include <cstddef>

#include "fpga/resource_model.h"

namespace mlqr {

/// Proposed design: per-qubit demodulation + 9 matched filters per qubit +
/// one small per-qubit head (P -> P/2 -> P/4 -> k), fully unrolled 8-bit.
DesignSpec proposed_design_spec(std::size_t n_qubits, int n_levels,
                                std::size_t kernel_len);

/// HERQULES: demodulation + 6 filters per qubit (QMF+RMF) + one joint head
/// (6n -> 60 -> 120 -> k^n), fully unrolled 8-bit.
DesignSpec herqules_design_spec(std::size_t n_qubits, int n_levels,
                                std::size_t kernel_len);

/// FNN: raw traces, no DSP front-end; 2*samples -> 500 -> 250 -> k^n.
/// Fully unrolled 8-bit — deliberately, to expose the paper's point that
/// the design cannot fit the device.
DesignSpec fnn_design_spec(std::size_t n_qubits, int n_levels,
                           std::size_t samples);

/// FNN folded onto the DSP budget (reuse factor chosen to fit), for the
/// latency comparison (Table VI "Slow").
DesignSpec fnn_folded_design_spec(std::size_t n_qubits, int n_levels,
                                  std::size_t samples,
                                  const FpgaDevice& device);

}  // namespace mlqr
