// Calibration-dataset generation following the paper's methodology (SSVI):
// all 2^n computational basis preparations, natural leakage mined by
// spectral clustering (no explicit |2> calibration), 30-70 train-test
// split stratified per state.
#pragma once

#include <cstdint>
#include <vector>

#include "discrim/shot_set.h"
#include "sim/chip_profile.h"

namespace mlqr {

struct DatasetConfig {
  ChipProfile chip = ChipProfile::mitll_five_qubit();
  /// Shots per computational basis state (the paper records 50,000 per
  /// state; defaults here are sized for minutes-scale reproduction).
  std::size_t shots_per_basis_state = 600;
  /// Paper convention: 30% train / 70% test.
  double train_fraction = 0.30;
  std::uint64_t seed = 20240508;
  /// Use spectral-clustering-mined labels for training (the paper's
  /// calibration-free pipeline). When false, trainers see ground truth —
  /// the oracle-label ablation.
  bool use_clustered_labels = true;
};

/// Generated dataset plus labeling diagnostics.
struct ReadoutDataset {
  ChipProfile chip;
  ShotSet shots;  ///< shots.labels = ground-truth start-of-readout levels.
  /// Labels handed to trainers (clustered estimates or ground truth).
  std::vector<int> training_labels;
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;

  /// Per-qubit count of traces the clustering tagged as |2> (paper reports
  /// 487 .. 17,642 across qubits).
  std::vector<std::size_t> mined_leakage_per_qubit;
  /// Per-qubit agreement of clustered labels with ground truth.
  std::vector<double> label_accuracy_per_qubit;
};

/// Simulates, labels (clustering), and splits a dataset.
ReadoutDataset generate_dataset(const DatasetConfig& cfg);

}  // namespace mlqr
