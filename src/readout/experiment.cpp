#include "readout/experiment.h"

#include <iostream>

#include "common/env.h"
#include "common/timer.h"

namespace mlqr {

void SuiteConfig::apply_fast_mode() {
  if (!fast_mode()) return;
  dataset.shots_per_basis_state =
      fast_scaled(dataset.shots_per_basis_state, 6, 60);
  proposed.trainer.epochs = std::max(8, proposed.trainer.epochs / 4);
  fnn.trainer.epochs = std::max(2, fnn.trainer.epochs / 3);
  herqules.trainer.epochs = std::max(4, herqules.trainer.epochs / 4);
}

FidelityReport evaluate_on_test(const EngineBackend& backend,
                                const ReadoutDataset& ds) {
  ReadoutEngine engine(backend);
  return engine.evaluate(ds.shots, ds.test_idx);
}

std::pair<double, double> leak_detection_rates(const FidelityReport& report) {
  double detect = 0.0, false_pos = 0.0;
  std::size_t n = 0;
  for (const QubitConfusion& c : report.per_qubit) {
    const std::size_t leaked = c.row_total(2);
    const std::size_t comp = c.row_total(0) + c.row_total(1);
    if (leaked == 0 || comp == 0) continue;
    detect += static_cast<double>(c.counts[2][2]) /
              static_cast<double>(leaked);
    false_pos += static_cast<double>(c.counts[0][2] + c.counts[1][2]) /
                 static_cast<double>(comp);
    ++n;
  }
  if (n == 0) return {1.0, 0.0};
  return {detect / static_cast<double>(n), false_pos / static_cast<double>(n)};
}

SuiteResult run_suite(const SuiteConfig& cfg_in) {
  SuiteConfig cfg = cfg_in;
  cfg.apply_fast_mode();

  SuiteResult result;
  Timer timer;
  if (cfg.verbose)
    std::cout << "[suite] generating dataset: "
              << cfg.dataset.shots_per_basis_state << " shots x "
              << (std::size_t{1} << cfg.dataset.chip.num_qubits())
              << " basis states...\n";
  result.dataset = generate_dataset(cfg.dataset);
  const ReadoutDataset& ds = result.dataset;
  if (cfg.verbose) {
    std::cout << "[suite] dataset ready in " << timer.seconds() << " s ("
              << ds.shots.size() << " shots); mined |2> traces per qubit:";
    for (std::size_t c : ds.mined_leakage_per_qubit) std::cout << ' ' << c;
    std::cout << '\n';
  }

  const ChipProfile& chip = ds.chip;
  const std::vector<int>& labels = ds.training_labels;

  if (cfg.train_proposed) {
    timer.reset();
    result.proposed = ProposedDiscriminator::train(ds.shots, labels,
                                                   ds.train_idx, chip,
                                                   cfg.proposed);
    result.train_seconds_proposed = timer.seconds();
    result.proposed_report = evaluate_on_test(make_backend(*result.proposed), ds);
    if (cfg.verbose)
      std::cout << "[suite] proposed trained in "
                << result.train_seconds_proposed << " s, F5Q = "
                << result.proposed_report->geometric_mean_fidelity() << '\n';
  }
  if (cfg.train_fnn) {
    timer.reset();
    result.fnn =
        FnnDiscriminator::train(ds.shots, labels, ds.train_idx, chip, cfg.fnn);
    result.train_seconds_fnn = timer.seconds();
    result.fnn_report = evaluate_on_test(make_backend(*result.fnn), ds);
    if (cfg.verbose)
      std::cout << "[suite] FNN trained in " << result.train_seconds_fnn
                << " s, F5Q = "
                << result.fnn_report->geometric_mean_fidelity() << '\n';
  }
  if (cfg.train_herqules) {
    timer.reset();
    result.herqules = HerqulesDiscriminator::train(ds.shots, labels,
                                                   ds.train_idx, chip,
                                                   cfg.herqules);
    result.train_seconds_herqules = timer.seconds();
    result.herqules_report =
        evaluate_on_test(make_backend(*result.herqules), ds);
    if (cfg.verbose)
      std::cout << "[suite] HERQULES trained in "
                << result.train_seconds_herqules << " s, F5Q = "
                << result.herqules_report->geometric_mean_fidelity() << '\n';
  }
  if (cfg.train_gaussian) {
    result.lda = GaussianShotDiscriminator::train(ds.shots, labels,
                                                  ds.train_idx, chip, cfg.lda);
    result.lda_report = evaluate_on_test(make_backend(*result.lda), ds);
    result.qda = GaussianShotDiscriminator::train(ds.shots, labels,
                                                  ds.train_idx, chip, cfg.qda);
    result.qda_report = evaluate_on_test(make_backend(*result.qda), ds);
    if (cfg.verbose)
      std::cout << "[suite] LDA F5Q = "
                << result.lda_report->geometric_mean_fidelity()
                << ", QDA F5Q = "
                << result.qda_report->geometric_mean_fidelity() << '\n';
  }
  return result;
}

}  // namespace mlqr
