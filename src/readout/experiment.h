// End-to-end experiment harness shared by benches and examples: generate
// (or accept) a dataset, train any subset of the discriminator designs,
// evaluate every trained design on the held-out test set against ground
// truth, and expose model metadata for the FPGA/power models.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "discrim/fnn_baseline.h"
#include "discrim/gaussian_discriminator.h"
#include "discrim/herqules_baseline.h"
#include "discrim/metrics.h"
#include "discrim/proposed.h"
#include "pipeline/readout_engine.h"
#include "readout/dataset.h"

namespace mlqr {

struct SuiteConfig {
  DatasetConfig dataset;
  ProposedConfig proposed;
  FnnConfig fnn;
  HerqulesConfig herqules;
  GaussianDiscriminatorConfig lda;
  GaussianDiscriminatorConfig qda;

  bool train_proposed = true;
  bool train_fnn = true;
  bool train_herqules = true;
  bool train_gaussian = true;
  bool verbose = true;

  SuiteConfig() {
    lda.kind = GaussianKind::kLda;
    qda.kind = GaussianKind::kQda;
  }

  /// Shrinks shot counts / epochs under MLQR_FAST=1 (CI mode).
  void apply_fast_mode();
};

/// Everything a bench needs to print a paper table.
struct SuiteResult {
  ReadoutDataset dataset;

  std::optional<ProposedDiscriminator> proposed;
  std::optional<FnnDiscriminator> fnn;
  std::optional<HerqulesDiscriminator> herqules;
  std::optional<GaussianShotDiscriminator> lda;
  std::optional<GaussianShotDiscriminator> qda;

  std::optional<FidelityReport> proposed_report;
  std::optional<FidelityReport> fnn_report;
  std::optional<FidelityReport> herqules_report;
  std::optional<FidelityReport> lda_report;
  std::optional<FidelityReport> qda_report;

  double train_seconds_proposed = 0.0;
  double train_seconds_fnn = 0.0;
  double train_seconds_herqules = 0.0;
};

/// Runs the full pipeline. Heavy: seconds to minutes depending on config.
SuiteResult run_suite(const SuiteConfig& cfg);

/// Evaluates one already-trained backend on a dataset's test split, batched
/// through ReadoutEngine — the single evaluation code path (run_suite, the
/// benches, and the tests all land here).
FidelityReport evaluate_on_test(const EngineBackend& backend,
                                const ReadoutDataset& ds);

/// Convenience for any ReadoutBackend discriminator: wraps it (non-owning)
/// and routes through the EngineBackend path above.
template <ReadoutBackend D>
FidelityReport evaluate_on_test(const D& d, const ReadoutDataset& ds) {
  return evaluate_on_test(make_backend(d), ds);
}

/// |2>-detection statistics of a report's ancilla-relevant qubits, averaged:
/// {P(read 2 | true 2), P(read 2 | true computational)} — feeds ERASER+M.
std::pair<double, double> leak_detection_rates(const FidelityReport& report);

}  // namespace mlqr
