// Spectral clustering on a k-nearest-neighbour affinity graph.
//
// Used to discover the rare natural-leakage cluster in MTV space without
// explicit |2> calibration (paper SSV-A). The pipeline: kNN graph with
// locally scaled Gaussian weights -> symmetric normalized Laplacian ->
// bottom-k eigenvectors (dense Jacobi; the input is a few hundred
// subsampled points) -> row-normalized embedding -> k-means.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace mlqr {

struct SpectralConfig {
  std::size_t n_clusters = 3;
  std::size_t n_neighbors = 12;
  int kmeans_max_iter = 100;
  int kmeans_n_init = 4;
};

/// Clusters row-major points (n x dim). n is expected to be modest
/// (<= ~800); subsample upstream for larger sets.
std::vector<int> spectral_cluster(std::span<const double> points,
                                  std::size_t dim, const SpectralConfig& cfg,
                                  Rng& rng);

}  // namespace mlqr
