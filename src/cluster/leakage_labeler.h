// Calibration-free leakage discovery (paper SSV-A).
//
// Input: one qubit's MTV points (complex -> 2-D) plus the *intended*
// computational preparation (0/1) of each trace. Traces that sit far from
// both computational clusters — and off the relaxation/excitation "chord"
// that connects them (mid-readout decay drags an MTV along that line) —
// form the naturally-occurring |2> population, without any explicit |2>
// calibration.
//
// The paper identifies the leaked cluster with spectral clustering
// (reproduced in bench/fig3_clusters via cluster/spectral.h); the
// production labeler here uses a robust geometric equivalent (median
// centroids, scaled-outlier gating, chord rejection) that stays reliable
// when the leakage prevalence drops to ~0.1% — the regime where a generic
// 3-way clustering tends to split a computational blob instead (see
// DESIGN.md SS5).
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace mlqr {

struct LeakageLabelerConfig {
  /// A point is a leakage candidate when it is farther than this many
  /// robust scales from *both* computational centroids...
  double outlier_sigma = 3.5;
  /// ...and farther than this many scales from the 0-1 relaxation chord.
  double chord_sigma = 3.0;
  /// Below this many candidates the qubit is declared leakage-free.
  std::size_t min_leak_candidates = 3;
  /// Final assignment: a trace is labeled |2> only when it is nearest the
  /// leak centroid and still this many scales away from both
  /// computational centroids (keeps relaxed-tail traces computational).
  double assign_sigma = 2.5;
};

/// Output of the labeler for one qubit.
struct LeakageLabeling {
  std::vector<int> levels;  ///< Estimated level (0/1/2) per trace.
  /// MTV-space centroids for levels 0/1/2 (centroids[2] is meaningful only
  /// when found_leakage).
  std::vector<std::complex<double>> centroids;
  std::size_t leakage_count = 0;  ///< Traces assigned |2>.
  bool found_leakage = false;
};

/// Labels every trace with an estimated 3-level state from 2-level
/// calibration data. `mtv` and `prepared` are parallel arrays; `prepared`
/// entries must be 0 or 1.
LeakageLabeling label_natural_leakage(
    std::span<const std::complex<double>> mtv, std::span<const int> prepared,
    const LeakageLabelerConfig& cfg = {});

}  // namespace mlqr
