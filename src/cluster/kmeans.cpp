#include "cluster/kmeans.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace mlqr {

namespace {

double sq_dist(const double* a, const double* b, std::size_t dim) {
  double acc = 0.0;
  for (std::size_t c = 0; c < dim; ++c) {
    const double d = a[c] - b[c];
    acc += d * d;
  }
  return acc;
}

std::vector<double> kmeanspp_init(std::span<const double> points,
                                  std::size_t dim, std::size_t k, Rng& rng) {
  const std::size_t n = points.size() / dim;
  std::vector<double> centroids;
  centroids.reserve(k * dim);

  // First centroid uniformly at random.
  const std::size_t first = rng.uniform_index(n);
  centroids.insert(centroids.end(), points.begin() + first * dim,
                   points.begin() + (first + 1) * dim);

  std::vector<double> d2(n, std::numeric_limits<double>::max());
  while (centroids.size() < k * dim) {
    const double* last = centroids.data() + centroids.size() - dim;
    double total = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      d2[p] = std::min(d2[p], sq_dist(points.data() + p * dim, last, dim));
      total += d2[p];
    }
    std::size_t chosen = 0;
    if (total <= 0.0) {
      chosen = rng.uniform_index(n);  // All points coincide with centroids.
    } else {
      double r = rng.uniform() * total;
      for (std::size_t p = 0; p < n; ++p) {
        r -= d2[p];
        if (r <= 0.0) {
          chosen = p;
          break;
        }
      }
    }
    centroids.insert(centroids.end(), points.begin() + chosen * dim,
                     points.begin() + (chosen + 1) * dim);
  }
  return centroids;
}

}  // namespace

std::vector<int> assign_to_centroids(std::span<const double> points,
                                     std::size_t dim,
                                     std::span<const double> centroids) {
  MLQR_CHECK(dim > 0 && points.size() % dim == 0 &&
             centroids.size() % dim == 0);
  const std::size_t n = points.size() / dim;
  const std::size_t k = centroids.size() / dim;
  MLQR_CHECK(k > 0);
  std::vector<int> labels(n, 0);
  for (std::size_t p = 0; p < n; ++p) {
    double best = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < k; ++c) {
      const double d =
          sq_dist(points.data() + p * dim, centroids.data() + c * dim, dim);
      if (d < best) {
        best = d;
        labels[p] = static_cast<int>(c);
      }
    }
  }
  return labels;
}

KMeansResult kmeans(std::span<const double> points, std::size_t dim,
                    std::size_t k, Rng& rng, int max_iter, int n_init) {
  MLQR_CHECK(dim > 0 && points.size() % dim == 0);
  const std::size_t n = points.size() / dim;
  MLQR_CHECK_MSG(n >= k && k > 0, "kmeans: " << n << " points for k=" << k);

  KMeansResult best;
  best.inertia = std::numeric_limits<double>::max();

  for (int init = 0; init < n_init; ++init) {
    std::vector<double> centroids = kmeanspp_init(points, dim, k, rng);
    std::vector<int> labels(n, -1);
    int iter = 0;
    for (; iter < max_iter; ++iter) {
      bool changed = false;
      labels = assign_to_centroids(points, dim, centroids);

      // Recompute centroids.
      std::vector<double> sums(k * dim, 0.0);
      std::vector<std::size_t> counts(k, 0);
      for (std::size_t p = 0; p < n; ++p) {
        const std::size_t c = labels[p];
        ++counts[c];
        for (std::size_t d = 0; d < dim; ++d)
          sums[c * dim + d] += points[p * dim + d];
      }
      for (std::size_t c = 0; c < k; ++c) {
        if (counts[c] == 0) continue;  // Empty cluster keeps its centroid.
        for (std::size_t d = 0; d < dim; ++d) {
          const double v = sums[c * dim + d] / static_cast<double>(counts[c]);
          if (std::abs(v - centroids[c * dim + d]) > 1e-12) changed = true;
          centroids[c * dim + d] = v;
        }
      }
      if (!changed) break;
    }

    double inertia = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      inertia += sq_dist(points.data() + p * dim,
                         centroids.data() + labels[p] * dim, dim);
    if (inertia < best.inertia) {
      best.labels = std::move(labels);
      best.centroids = std::move(centroids);
      best.inertia = inertia;
      best.iterations = iter;
    }
  }
  return best;
}

}  // namespace mlqr
