// k-means clustering with k-means++ seeding.
//
// Final stage of spectral clustering (on the Laplacian embedding) and the
// workhorse for assigning full datasets to centroids discovered on a
// subsample.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.h"

namespace mlqr {

/// Result of a k-means run over row-major points (n x dim).
struct KMeansResult {
  std::vector<int> labels;        ///< Cluster id per point.
  std::vector<double> centroids;  ///< Row-major (k x dim).
  double inertia = 0.0;           ///< Sum of squared distances to centroids.
  int iterations = 0;
};

/// Lloyd's algorithm with k-means++ initialization. `points` is row-major
/// with `dim` columns. Restarts `n_init` times and keeps the best inertia.
KMeansResult kmeans(std::span<const double> points, std::size_t dim,
                    std::size_t k, Rng& rng, int max_iter = 100,
                    int n_init = 4);

/// Assigns points to the nearest of the given centroids (row-major k x dim).
std::vector<int> assign_to_centroids(std::span<const double> points,
                                     std::size_t dim,
                                     std::span<const double> centroids);

}  // namespace mlqr
