#include "cluster/spectral.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cluster/kmeans.h"
#include "common/error.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace mlqr {

std::vector<int> spectral_cluster(std::span<const double> points,
                                  std::size_t dim, const SpectralConfig& cfg,
                                  Rng& rng) {
  MLQR_CHECK(dim > 0 && points.size() % dim == 0);
  const std::size_t n = points.size() / dim;
  MLQR_CHECK_MSG(n >= cfg.n_clusters, "spectral_cluster: too few points");
  MLQR_CHECK_MSG(n <= 2000, "spectral_cluster is dense O(n^3); subsample "
                            "above ~2000 points (got " << n << ')');

  const std::size_t k_nn = std::min<std::size_t>(cfg.n_neighbors, n - 1);

  // Pairwise squared distances (symmetric, n x n).
  Matrix d2(n, n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      double acc = 0.0;
      for (std::size_t c = 0; c < dim; ++c) {
        const double d = points[a * dim + c] - points[b * dim + c];
        acc += d * d;
      }
      d2(a, b) = acc;
      d2(b, a) = acc;
    }
  }

  // Local scale per point: distance to its k-th nearest neighbour
  // (Zelnik-Manor/Perona self-tuning), robust to density contrast between
  // the big computational clusters and the tiny leakage cluster.
  std::vector<double> sigma(n, 0.0);
  std::vector<double> row(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) row[b] = d2(a, b);
    std::nth_element(row.begin(), row.begin() + k_nn, row.end());
    sigma[a] = std::sqrt(std::max(row[k_nn], 1e-18));
  }

  // kNN affinity (symmetrized by max): w_ab = exp(-d2 / (sigma_a sigma_b)).
  Matrix w(n, n, 0.0);
  std::vector<std::size_t> order(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) order[b] = b;
    std::nth_element(order.begin(), order.begin() + k_nn, order.end(),
                     [&](std::size_t x, std::size_t y) {
                       return d2(a, x) < d2(a, y);
                     });
    for (std::size_t r = 0; r <= k_nn; ++r) {
      const std::size_t b = order[r];
      if (b == a) continue;
      const double weight = std::exp(-d2(a, b) / (sigma[a] * sigma[b]));
      w(a, b) = std::max(w(a, b), weight);
      w(b, a) = w(a, b);
    }
  }

  // Symmetric normalized Laplacian: L = I - D^{-1/2} W D^{-1/2}.
  std::vector<double> inv_sqrt_deg(n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    double deg = 0.0;
    for (std::size_t b = 0; b < n; ++b) deg += w(a, b);
    inv_sqrt_deg[a] = deg > 0.0 ? 1.0 / std::sqrt(deg) : 0.0;
  }
  Matrix lap(n, n, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b)
      lap(a, b) = (a == b ? 1.0 : 0.0) -
                  inv_sqrt_deg[a] * w(a, b) * inv_sqrt_deg[b];
  }

  const EigenDecomposition eig = jacobi_eigen_symmetric(lap, 1e-10, 48);

  // Embedding: bottom n_clusters eigenvectors, rows L2-normalized.
  const std::size_t kc = cfg.n_clusters;
  std::vector<double> embedding(n * kc, 0.0);
  for (std::size_t a = 0; a < n; ++a) {
    double norm = 0.0;
    for (std::size_t j = 0; j < kc; ++j) {
      const double v = eig.eigenvectors(a, j);
      embedding[a * kc + j] = v;
      norm += v * v;
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12)
      for (std::size_t j = 0; j < kc; ++j) embedding[a * kc + j] /= norm;
  }

  KMeansResult km = kmeans(embedding, kc, kc, rng, cfg.kmeans_max_iter,
                           cfg.kmeans_n_init);
  return km.labels;
}

}  // namespace mlqr
