#include "cluster/leakage_labeler.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/error.h"

namespace mlqr {

namespace {

double median(std::vector<double> xs) {
  MLQR_CHECK(!xs.empty());
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 0) {
    std::nth_element(xs.begin(), xs.begin() + mid - 1, xs.begin() + mid);
    return 0.5 * (xs[mid - 1] + hi);
  }
  return hi;
}

std::complex<double> component_median(
    std::span<const std::complex<double>> points,
    std::span<const std::size_t> members) {
  std::vector<double> re, im;
  re.reserve(members.size());
  im.reserve(members.size());
  for (std::size_t s : members) {
    re.push_back(points[s].real());
    im.push_back(points[s].imag());
  }
  return {median(std::move(re)), median(std::move(im))};
}

}  // namespace

LeakageLabeling label_natural_leakage(
    std::span<const std::complex<double>> mtv, std::span<const int> prepared,
    const LeakageLabelerConfig& cfg) {
  MLQR_CHECK(mtv.size() == prepared.size());
  MLQR_CHECK_MSG(mtv.size() >= 30, "too few traces to mine leakage");
  const std::size_t n = mtv.size();

  // Robust computational centroids and scales from the prepared labels.
  std::array<std::vector<std::size_t>, 2> members;
  for (std::size_t s = 0; s < n; ++s) {
    const int p = prepared[s];
    MLQR_CHECK(p == 0 || p == 1);
    members[p].push_back(s);
  }
  MLQR_CHECK_MSG(members[0].size() >= 8 && members[1].size() >= 8,
                 "need both |0> and |1> preparations");

  std::array<std::complex<double>, 2> centroid;
  std::array<double, 2> scale{};
  for (int c = 0; c < 2; ++c) {
    centroid[c] = component_median(mtv, members[c]);
    std::vector<double> dists;
    dists.reserve(members[c].size());
    for (std::size_t s : members[c])
      dists.push_back(std::abs(mtv[s] - centroid[c]));
    scale[c] = std::max(median(std::move(dists)), 1e-12);
  }
  const double s_max = std::max(scale[0], scale[1]);

  // Chord geometry: relaxation (1->0) and excitation (0->1) during the
  // readout window drag the MTV along the segment c0 -> c1.
  const std::complex<double> chord = centroid[1] - centroid[0];
  const double chord_len = std::abs(chord);
  MLQR_CHECK_MSG(chord_len > 1e-9, "|0> and |1> responses coincide");
  const std::complex<double> u = chord / chord_len;

  auto chord_coords = [&](const std::complex<double>& z) {
    const std::complex<double> rel = z - centroid[0];
    const double along = (std::conj(u) * rel).real();
    const double perp = std::abs(rel - along * u);
    return std::pair<double, double>{along, perp};
  };
  // Chord half-width: noise-scaled, but never wider than a fraction of the
  // chord itself (a low-SNR qubit would otherwise classify the whole plane
  // as "on chord" and mining could never fire).
  const double chord_halfwidth =
      std::min(cfg.chord_sigma * s_max, 0.35 * chord_len);
  auto on_chord = [&](const std::complex<double>& z) {
    const auto [along, perp] = chord_coords(z);
    return perp <= chord_halfwidth && along >= -3.0 * s_max &&
           along <= chord_len + 3.0 * s_max;
  };
  auto outlier_score = [&](const std::complex<double>& z) {
    return std::min(std::abs(z - centroid[0]) / scale[0],
                    std::abs(z - centroid[1]) / scale[1]);
  };

  // Leakage candidates: far from both blobs, off the chord. When the |2>
  // response sits close to a computational blob (the paper's qubit 2), the
  // gate is loosened stepwise until a minimal population appears — mined
  // labels get noisier, which is exactly the degradation the paper reports
  // for that qubit.
  std::vector<std::size_t> candidates;
  for (double sigma = cfg.outlier_sigma;
       sigma >= 0.7 * cfg.outlier_sigma - 1e-9; sigma -= 0.15 * cfg.outlier_sigma) {
    candidates.clear();
    for (std::size_t s = 0; s < n; ++s)
      if (outlier_score(mtv[s]) > sigma && !on_chord(mtv[s]))
        candidates.push_back(s);
    if (candidates.size() >= cfg.min_leak_candidates) break;
  }

  LeakageLabeling out;
  out.levels.assign(n, 0);
  out.centroids.assign(3, {0.0, 0.0});
  out.centroids[0] = centroid[0];
  out.centroids[1] = centroid[1];

  auto nearest_computational = [&](const std::complex<double>& z) {
    return std::abs(z - centroid[0]) <= std::abs(z - centroid[1]) ? 0 : 1;
  };

  if (candidates.size() < cfg.min_leak_candidates) {
    for (std::size_t s = 0; s < n; ++s)
      out.levels[s] = nearest_computational(mtv[s]);
    return out;
  }

  out.found_leakage = true;
  std::complex<double> leak_centroid = component_median(mtv, candidates);
  // One refinement pass: re-center on the candidates within 3 scales of
  // the initial leak centroid (sheds stragglers from deep relax tails).
  {
    std::vector<double> dists;
    dists.reserve(candidates.size());
    for (std::size_t s : candidates)
      dists.push_back(std::abs(mtv[s] - leak_centroid));
    const double leak_scale = std::max(median(dists), 1e-12);
    std::vector<std::size_t> core;
    for (std::size_t s : candidates)
      if (std::abs(mtv[s] - leak_centroid) <= 3.0 * leak_scale)
        core.push_back(s);
    if (core.size() >= cfg.min_leak_candidates)
      leak_centroid = component_median(mtv, core);
  }
  out.centroids[2] = leak_centroid;

  for (std::size_t s = 0; s < n; ++s) {
    const std::complex<double>& z = mtv[s];
    const double d_leak = std::abs(z - leak_centroid);
    const bool nearest_is_leak = d_leak < std::abs(z - centroid[0]) &&
                                 d_leak < std::abs(z - centroid[1]);
    if (nearest_is_leak && outlier_score(z) > cfg.assign_sigma &&
        !on_chord(z)) {
      out.levels[s] = 2;
      ++out.leakage_count;
    } else {
      out.levels[s] = nearest_computational(z);
    }
  }
  return out;
}

}  // namespace mlqr
