#include "fpga/resource_model.h"

#include <cmath>

#include "common/error.h"

namespace mlqr {

namespace {
// Calibration constants (see header). Fitted against the paper's reported
// utilizations of the three designs on the xczu7ev:
//   - kLutPerParamBit: logic cost of a fully-unrolled constant-coefficient
//     multiply-accumulate, per weight bit (~1.4 LUT/param at 8 bits).
//   - kLutPerNeuron: bias add + activation + routing per neuron.
//   - kLutPerLayer: dataflow control overhead per layer instance.
//   - kFfPerParamBit: pipeline registers through the MAC array.
constexpr double kLutPerParamBit = 0.175;
constexpr double kLutPerNeuron = 10.0;
constexpr double kLutPerLayer = 280.0;
constexpr double kFfPerParamBit = 0.15;
constexpr double kFfPerNeuron = 12.0;
constexpr double kFfPerLayer = 80.0;
constexpr double kBramBitsPer36k = 36.0 * 1024.0;
}  // namespace

FpgaDevice FpgaDevice::xczu7ev() {
  return {"xczu7ev-ffvc1156-2-i", 230400, 460800, 312, 1728};
}

ResourceEstimate& ResourceEstimate::operator+=(const ResourceEstimate& other) {
  luts += other.luts;
  ffs += other.ffs;
  bram36 += other.bram36;
  dsps += other.dsps;
  return *this;
}

HlsConfig hls_config_from_formats(int weight_bits, int accum_bits,
                                  int reuse_factor) {
  MLQR_CHECK(weight_bits >= 2 && weight_bits <= 32);
  MLQR_CHECK(accum_bits >= weight_bits && accum_bits <= 64);
  MLQR_CHECK(reuse_factor >= 1);
  HlsConfig cfg;
  cfg.weight_bits = weight_bits;
  cfg.accum_bits = accum_bits;
  cfg.reuse_factor = reuse_factor;
  cfg.weights_in_bram = reuse_factor > 1;
  return cfg;
}

ResourceEstimate estimate_dense_layer(std::size_t in, std::size_t out,
                                      const HlsConfig& cfg) {
  MLQR_CHECK(in > 0 && out > 0);
  MLQR_CHECK(cfg.weight_bits >= 2 && cfg.weight_bits <= 32);
  MLQR_CHECK(cfg.reuse_factor >= 1);
  const double params = static_cast<double>(in * out + out);
  const double neurons = static_cast<double>(out);

  ResourceEstimate r;
  if (cfg.reuse_factor == 1 && !cfg.weights_in_bram) {
    // Fully unrolled: constant multipliers in fabric, no DSP/BRAM.
    r.luts = params * cfg.weight_bits * kLutPerParamBit +
             neurons * kLutPerNeuron + kLutPerLayer;
    r.ffs = params * cfg.weight_bits * kFfPerParamBit +
            neurons * kFfPerNeuron + kFfPerLayer;
  } else {
    // Time-multiplexed MAC array on DSP slices, weights streamed from BRAM.
    const double macs = static_cast<double>(in) * static_cast<double>(out);
    r.dsps = std::ceil(macs / static_cast<double>(cfg.reuse_factor));
    r.luts = r.dsps * 12.0 + neurons * kLutPerNeuron + kLutPerLayer;
    r.ffs = r.dsps * 40.0 + neurons * kFfPerNeuron + kFfPerLayer;
    r.bram36 = std::ceil(params * cfg.weight_bits / kBramBitsPer36k);
  }
  return r;
}

ResourceEstimate estimate_matched_filter(std::size_t kernel_len,
                                         const HlsConfig& cfg) {
  MLQR_CHECK(kernel_len > 0);
  ResourceEstimate r;
  // One streaming complex MAC (I/Q interleaved on a DSP pair) + control.
  r.dsps = 2.0;
  r.luts = 100.0;
  r.ffs = 80.0;
  // Complex kernel coefficients, double-buffered.
  r.bram36 =
      std::ceil(static_cast<double>(kernel_len) * 2.0 * cfg.weight_bits * 2.0 /
                kBramBitsPer36k);
  return r;
}

ResourceEstimate estimate_demodulator_channel() {
  ResourceEstimate r;
  r.dsps = 2.0;  // Two FMA units (paper footnote 1).
  r.luts = 60.0;
  r.ffs = 80.0;
  r.bram36 = 0.25;  // NCO phase table (shared 18k quarter).
  return r;
}

std::size_t DesignSpec::total_nn_parameters() const {
  std::size_t total = 0;
  for (const auto& sizes : nns) {
    MLQR_CHECK(sizes.size() >= 2);
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l)
      total += sizes[l] * sizes[l + 1] + sizes[l + 1];
  }
  return total;
}

ResourceEstimate estimate_design(const DesignSpec& spec) {
  ResourceEstimate total;
  for (std::size_t c = 0; c < spec.demod_channels; ++c)
    total += estimate_demodulator_channel();
  for (std::size_t f = 0; f < spec.matched_filters; ++f)
    total += estimate_matched_filter(spec.mf_kernel_len, spec.hls);
  for (const auto& sizes : spec.nns) {
    MLQR_CHECK(sizes.size() >= 2);
    for (std::size_t l = 0; l + 1 < sizes.size(); ++l)
      total += estimate_dense_layer(sizes[l], sizes[l + 1], spec.hls);
  }
  return total;
}

Utilization utilization(const ResourceEstimate& est, const FpgaDevice& dev) {
  MLQR_CHECK(dev.luts > 0 && dev.ffs > 0 && dev.bram36 > 0 && dev.dsps > 0);
  Utilization u;
  u.lut = est.luts / static_cast<double>(dev.luts);
  u.ff = est.ffs / static_cast<double>(dev.ffs);
  u.bram = est.bram36 / static_cast<double>(dev.bram36);
  u.dsp = est.dsps / static_cast<double>(dev.dsps);
  return u;
}

std::vector<std::size_t> layer_sizes(const Mlp& mlp) {
  std::vector<std::size_t> sizes;
  sizes.push_back(mlp.input_size());
  for (const DenseLayer& l : mlp.layers()) sizes.push_back(l.out);
  return sizes;
}

}  // namespace mlqr
