// Inference latency model for the dataflow NN engines.
//
// Fully-unrolled layers take one MAC cycle plus one activation/register
// stage; time-multiplexed layers take reuse_factor cycles per output pass.
// The proposed per-qubit head (45 -> 22 -> 11 -> 3, reuse 1) lands at 5
// pipeline cycles — the figure the paper reports at 1 GHz — while the FNN
// must fold 686 k MACs onto the DSP budget and ends up three orders of
// magnitude slower, which is why Table VI marks it "Slow".
#pragma once

#include <cstddef>
#include <vector>

#include "fpga/resource_model.h"

namespace mlqr {

/// Pipeline cycles for one NN instance described by its layer sizes.
std::size_t nn_latency_cycles(const std::vector<std::size_t>& layer_sizes,
                              const HlsConfig& cfg);

/// Latency of a whole design, assuming the per-qubit NNs of the proposed
/// architecture run in parallel (max, not sum) and matched filters overlap
/// with trace streaming (they add only a drain cycle).
std::size_t design_latency_cycles(const DesignSpec& spec);

/// Convenience: cycles -> nanoseconds at the given clock.
double cycles_to_ns(std::size_t cycles, double clock_ghz);

}  // namespace mlqr
