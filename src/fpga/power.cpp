#include "fpga/power.h"

#include <cmath>

#include "common/error.h"

namespace mlqr {

namespace {
// Calibrated so the proposed design reproduces the paper's 1.561 mW
// operating point (see header). 45 nm, 8-bit MAC.
constexpr double kBaseMacEnergyJ = 5.0e-15;   // 5 fJ at 8 bits / 45 nm.
constexpr double kLeakagePerGateW = 0.58e-9;  // 0.58 nW/gate at 45 nm.
constexpr double kGatesPerMacBit = 52.0;      // NAND2-equivalents per MAC bit.
}  // namespace

double mac_energy_joules(int bits, double tech_nm) {
  MLQR_CHECK(bits >= 2 && tech_nm > 0.0);
  // Energy scales ~quadratically with multiplier width and ~linearly with
  // feature size at these nodes.
  const double bit_scale = std::pow(static_cast<double>(bits) / 8.0, 1.6);
  const double tech_scale = tech_nm / 45.0;
  return kBaseMacEnergyJ * bit_scale * tech_scale;
}

PowerEstimate estimate_power(const DesignSpec& spec,
                             std::size_t latency_cycles,
                             const PowerConfig& cfg) {
  MLQR_CHECK(latency_cycles > 0);
  const double macs = static_cast<double>(spec.total_nn_parameters());
  // One inference consumes ~`macs` MAC operations over `latency_cycles`
  // cycles; at full occupancy the engine sustains macs/latency per cycle.
  const double macs_per_second = macs / static_cast<double>(latency_cycles) *
                                 cfg.clock_ghz * 1e9 * cfg.activity_factor;

  PowerEstimate p;
  p.dynamic_mw =
      macs_per_second * mac_energy_joules(cfg.mac_bits, cfg.tech_nm) * 1e3;
  const double gates = macs * cfg.mac_bits * kGatesPerMacBit;
  p.static_mw = gates * kLeakagePerGateW * (cfg.tech_nm / 45.0) * 1e3;
  return p;
}

}  // namespace mlqr
