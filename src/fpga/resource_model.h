// hls4ml-style FPGA resource estimation (paper SSVI "FPGA Hardware",
// Fig 1(d), Fig 5(a)).
//
// Stand-in for the paper's hls4ml + Vivado HLS flow (DESIGN.md SS1): a
// first-order analytic model of a dataflow NN accelerator plus streaming
// matched-filter front-end. Calibration constants are fitted to the
// published utilization endpoints (FNN ~420% LUT of an xczu7ev, HERQULES
// ~28%, proposed ~7%) so the *ratios* — the paper's actual claims — emerge
// from parameter counts and precision, not from hard-coded outputs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/mlp.h"

namespace mlqr {

/// FPGA device capacity (Xilinx Zynq UltraScale+ xczu7ev-ffvc1156-2-i —
/// the paper's target part).
struct FpgaDevice {
  std::string name;
  std::size_t luts = 0;
  std::size_t ffs = 0;
  std::size_t bram36 = 0;
  std::size_t dsps = 0;

  static FpgaDevice xczu7ev();
};

/// HLS implementation knobs (mirrors the hls4ml precision / reuse options).
struct HlsConfig {
  int weight_bits = 8;       ///< Fixed-point weight width.
  int accum_bits = 16;       ///< Accumulator width.
  int reuse_factor = 1;      ///< 1 = fully unrolled multiplies.
  bool weights_in_bram = false;  ///< reuse>1 streams weights from BRAM.
};

/// Absolute resource counts for a block or a whole design.
struct ResourceEstimate {
  double luts = 0.0;
  double ffs = 0.0;
  double bram36 = 0.0;
  double dsps = 0.0;

  ResourceEstimate& operator+=(const ResourceEstimate& other);
};

/// Fractional utilization against a device (1.0 = 100%).
struct Utilization {
  double lut = 0.0;
  double ff = 0.0;
  double bram = 0.0;
  double dsp = 0.0;

  bool fits() const {
    return lut <= 1.0 && ff <= 1.0 && bram <= 1.0 && dsp <= 1.0;
  }
};

/// HLS precision knobs derived from a design's actually-calibrated
/// fixed-point widths (e.g. QuantizedProposedDiscriminator's weight and
/// accumulator code widths) instead of the assumed deployment defaults —
/// resource-vs-fidelity sweeps stay honest to the datapath that ran.
HlsConfig hls_config_from_formats(int weight_bits, int accum_bits,
                                  int reuse_factor = 1);

/// One dense layer (in x out MACs + bias + activation).
ResourceEstimate estimate_dense_layer(std::size_t in, std::size_t out,
                                      const HlsConfig& cfg);

/// A streaming matched-filter engine: one complex MAC running at the ADC
/// rate plus kernel coefficient storage.
ResourceEstimate estimate_matched_filter(std::size_t kernel_len,
                                         const HlsConfig& cfg);

/// Digital down-conversion for one channel (two FMA units + NCO).
ResourceEstimate estimate_demodulator_channel();

/// Complete readout-discriminator design: optional DSP front-end
/// (demodulators + matched filters) and one or more NNs.
struct DesignSpec {
  std::string name;
  std::size_t demod_channels = 0;
  std::size_t matched_filters = 0;
  std::size_t mf_kernel_len = 0;
  /// Layer size lists, one per NN instance (the proposed design has one
  /// small NN per qubit).
  std::vector<std::vector<std::size_t>> nns;
  HlsConfig hls;

  std::size_t total_nn_parameters() const;
};

ResourceEstimate estimate_design(const DesignSpec& spec);
Utilization utilization(const ResourceEstimate& est, const FpgaDevice& dev);

/// Convenience: layer size list of a trained Mlp ({in, h1, ..., out}).
std::vector<std::size_t> layer_sizes(const Mlp& mlp);

}  // namespace mlqr
