#include "fpga/latency.h"

#include <algorithm>

#include "common/error.h"

namespace mlqr {

std::size_t nn_latency_cycles(const std::vector<std::size_t>& sizes,
                              const HlsConfig& cfg) {
  MLQR_CHECK(sizes.size() >= 2);
  std::size_t cycles = 0;
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    // MAC stage: one cycle fully unrolled, else reuse_factor passes.
    cycles += static_cast<std::size_t>(cfg.reuse_factor);
    // Activation/register stage between layers (none after the last).
    if (l + 2 < sizes.size()) ++cycles;
  }
  // Output argmax/register stage.
  cycles += 1;
  return cycles;
}

std::size_t design_latency_cycles(const DesignSpec& spec) {
  std::size_t worst_nn = 0;
  for (const auto& sizes : spec.nns)
    worst_nn = std::max(worst_nn, nn_latency_cycles(sizes, spec.hls));
  // Matched filters stream alongside the trace; their accumulator drains in
  // one cycle, and demodulation adds one pipeline stage.
  const std::size_t front_end =
      (spec.matched_filters > 0 ? 1 : 0) + (spec.demod_channels > 0 ? 1 : 0);
  return front_end + worst_nn;
}

double cycles_to_ns(std::size_t cycles, double clock_ghz) {
  MLQR_CHECK(clock_ghz > 0.0);
  return static_cast<double>(cycles) / clock_ghz;
}

}  // namespace mlqr
