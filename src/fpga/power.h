// First-order ASIC power model at 45 nm (paper SSVII-D).
//
// Stand-in for the Synopsys Design Compiler + 45 nm TSMC flow: dynamic
// power from energy-per-MAC at the achieved MAC throughput, static power
// from leakage over the synthesized gate count. The energy/MAC constant is
// calibrated so the proposed design (1,265 8-bit MACs, 5-cycle pipeline,
// 1 GHz) lands near the paper's 1.561 mW; every other design is then a
// prediction of the same model.
#pragma once

#include <cstddef>

#include "fpga/resource_model.h"

namespace mlqr {

struct PowerConfig {
  double clock_ghz = 1.0;
  double tech_nm = 45.0;
  int mac_bits = 8;
  double activity_factor = 1.0;  ///< Fraction of cycles the engine is busy.
};

struct PowerEstimate {
  double dynamic_mw = 0.0;
  double static_mw = 0.0;
  double total_mw() const { return dynamic_mw + static_mw; }
};

/// Power for a design given its NN MAC workload and pipeline depth.
PowerEstimate estimate_power(const DesignSpec& spec, std::size_t latency_cycles,
                             const PowerConfig& cfg);

/// Energy of a single MAC (J) at the given precision/technology.
double mac_energy_joules(int bits, double tech_nm);

}  // namespace mlqr
