// Condensed IQ-plane features for classical (non-NN) discriminators.
//
// The standard single-qubit pipeline condenses a demodulated trace to its
// Mean Trace Value — one point in the IQ plane (2 real features). The
// optional early/late split (4 features) gives Gaussian discriminators a
// crude handle on mid-trace transitions; the paper's LDA/QDA baselines use
// the plain 2-D form.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/iq.h"

namespace mlqr {

/// MTV as a 2-vector {Re, Im}.
std::vector<double> mtv_features(const BasebandTrace& trace);

/// Early-window and late-window means as a 4-vector
/// {Re_early, Im_early, Re_late, Im_late}.
std::vector<double> split_window_features(const BasebandTrace& trace,
                                          double split_fraction = 0.5);

}  // namespace mlqr
