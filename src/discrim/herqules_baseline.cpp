#include "discrim/herqules_baseline.h"

#include <algorithm>
#include <array>

#include "common/error.h"
#include "common/serialize.h"
#include "discrim/joint_label.h"

namespace mlqr {

namespace {

/// Per-qubit feature indices used at a given level count. The bank always
/// holds 3 QMF + 3 RMF; two-level mode keeps only the |0>vs|1> QMF and the
/// 1->0 RMF (the published two-level input layout, 2 features per qubit).
/// Shared by training and the allocation-free inference path so the two
/// can never disagree on the feature layout.
std::span<const std::size_t> active_filter_indices(int n_levels) {
  static constexpr std::array<std::size_t, 6> kThreeLevel{0, 1, 2, 3, 4, 5};
  static constexpr std::array<std::size_t, 2> kTwoLevel{0, 3};
  if (n_levels >= 3) return kThreeLevel;
  return kTwoLevel;
}

}  // namespace

HerqulesDiscriminator HerqulesDiscriminator::train(
    const ShotSet& shots, std::span<const int> labels_flat,
    std::span<const std::size_t> train_idx, const ChipProfile& chip,
    const HerqulesConfig& cfg) {
  shots.validate();
  MLQR_CHECK(labels_flat.size() == shots.size() * shots.n_qubits);
  MLQR_CHECK(!train_idx.empty());
  MLQR_CHECK(cfg.n_levels >= 2 && cfg.n_levels <= kNumLevels);

  HerqulesDiscriminator d;
  d.cfg_ = cfg;
  d.n_qubits_ = shots.n_qubits;
  d.demod_ = Demodulator(chip);
  d.samples_used_ = chip.window_samples(cfg.duration_ns);

  MfBankConfig bank_cfg;
  bank_cfg.use_qmf = true;
  bank_cfg.use_rmf = true;
  bank_cfg.use_emf = false;  // HERQULES has no excitation filters.
  bank_cfg.min_error_traces = cfg.min_error_traces;

  const std::span<const std::size_t> active =
      active_filter_indices(cfg.n_levels);
  const std::size_t per_q = active.size();
  const std::size_t feat_dim = per_q * shots.n_qubits;
  const std::size_t n_train = train_idx.size();

  // Joint-head training set: shots whose labels are representable.
  std::vector<std::size_t> usable_pos;  // Position within train_idx.
  usable_pos.reserve(n_train);
  for (std::size_t i = 0; i < n_train; ++i) {
    bool ok = true;
    const std::size_t s = train_idx[i];
    for (std::size_t q = 0; q < shots.n_qubits && ok; ++q)
      ok = labels_flat[s * shots.n_qubits + q] < cfg.n_levels;
    if (ok) usable_pos.push_back(i);
  }
  MLQR_CHECK_MSG(!usable_pos.empty(), "no usable training shots");

  std::vector<float> features(usable_pos.size() * feat_dim, 0.0f);
  std::vector<float> full_features(usable_pos.size() * feat_dim, 0.0f);
  std::vector<QubitMfBank> banks;
  banks.reserve(shots.n_qubits);
  for (std::size_t q = 0; q < shots.n_qubits; ++q) {
    const std::vector<BasebandTrace> baseband =
        demodulate_subset(shots, train_idx, d.demod_, q, d.samples_used_);
    std::vector<int> labels(n_train);
    for (std::size_t i = 0; i < n_train; ++i)
      labels[i] = labels_flat[train_idx[i] * shots.n_qubits + q];
    // Banks are always trained on the full 3-level labels (the filters
    // need |2> statistics); two-level mode just reads fewer of them.
    // Training features are cross-fitted (see cross_fit_features).
    banks.push_back(
        QubitMfBank::train(baseband, labels, d.samples_used_, bank_cfg));

    const std::vector<float> xfit =
        cross_fit_features(baseband, labels, d.samples_used_, bank_cfg);
    const std::size_t bank_per_q = bank_cfg.filters_per_qubit();
    std::vector<float> scratch;
    for (std::size_t u = 0; u < usable_pos.size(); ++u) {
      const float* row = xfit.data() + usable_pos[u] * bank_per_q;
      scratch.clear();
      banks.back().features(baseband[usable_pos[u]], scratch);
      for (std::size_t f = 0; f < per_q; ++f) {
        features[u * feat_dim + q * per_q + f] = row[active[f]];
        full_features[u * feat_dim + q * per_q + f] = scratch[active[f]];
      }
    }
  }
  d.bank_.adopt(bank_cfg, std::move(banks));

  std::vector<int> joint(usable_pos.size());
  for (std::size_t u = 0; u < usable_pos.size(); ++u) {
    const std::size_t s = train_idx[usable_pos[u]];
    joint[u] = static_cast<int>(encode_joint(
        labels_flat.subspan(s * shots.n_qubits, shots.n_qubits),
        cfg.n_levels));
  }

  // Separate normalizers for the cross-fitted training features and the
  // full-bank inference features (see ProposedDiscriminator::train).
  FeatureNormalizer train_norm = FeatureNormalizer::fit(features, feat_dim);
  train_norm.apply(features);
  d.normalizer_ = FeatureNormalizer::fit(full_features, feat_dim);

  std::vector<std::size_t> sizes{feat_dim};
  sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
  const std::size_t n_classes =
      joint_class_count(shots.n_qubits, cfg.n_levels);
  sizes.push_back(n_classes);

  Rng init_rng(cfg.trainer.seed);
  d.model_ = Mlp(sizes);
  d.model_.init_weights(init_rng);
  TrainerConfig tcfg = cfg.trainer;
  if (cfg.balance_classes) {
    tcfg.class_weights = inverse_frequency_weights(joint, n_classes);
    for (float& w : tcfg.class_weights)
      w = std::min(w, cfg.class_weight_cap);
  }
  train_classifier(d.model_, features, joint, tcfg);
  return d;
}

std::vector<int> HerqulesDiscriminator::classify(const IqTrace& trace) const {
  InferenceScratch scratch;
  std::vector<int> out(n_qubits_);
  classify_into(trace, scratch, out);
  return out;
}

void HerqulesDiscriminator::classify_into(const IqTrace& trace,
                                          InferenceScratch& scratch,
                                          std::span<int> out) const {
  MLQR_CHECK(out.size() == n_qubits_);
  const std::span<const std::size_t> active =
      active_filter_indices(cfg_.n_levels);
  const std::size_t per_q = active.size();
  std::vector<float>& feats = scratch.features;
  feats.assign(per_q * n_qubits_, 0.0f);
  if (scratch.baseband.empty()) scratch.baseband.resize(1);
  BasebandTrace& baseband = scratch.baseband.front();
  for (std::size_t q = 0; q < n_qubits_; ++q) {
    demod_.demodulate_into(trace, q, samples_used_, baseband);
    scratch.qubit_features.clear();
    bank_.bank(q).features(baseband, scratch.qubit_features);
    for (std::size_t f = 0; f < per_q; ++f)
      feats[q * per_q + f] = scratch.qubit_features[active[f]];
  }
  normalizer_.apply(feats);
  const int joint =
      model_.predict_reusing(feats, scratch.logits, scratch.activations);
  decode_joint_into(static_cast<std::size_t>(joint), cfg_.n_levels, out);
}

void HerqulesDiscriminator::save(std::ostream& os) const {
  io::write_u32(os, static_cast<std::uint32_t>(cfg_.n_levels));
  io::write_u64(os, n_qubits_);
  io::write_u64(os, samples_used_);
  demod_.save(os);
  bank_.save(os);
  normalizer_.save(os);
  model_.save(os);
}

HerqulesDiscriminator HerqulesDiscriminator::load(std::istream& is) {
  HerqulesDiscriminator d;
  const std::uint32_t n_levels = io::read_u32(is);
  MLQR_CHECK_MSG(
      n_levels >= 2 && n_levels <= static_cast<std::uint32_t>(kNumLevels),
      "corrupt HERQULES snapshot: " << n_levels << " levels");
  d.cfg_.n_levels = static_cast<int>(n_levels);
  d.n_qubits_ = io::read_count(is, 4096);
  d.samples_used_ = io::read_count(is);
  MLQR_CHECK_MSG(d.n_qubits_ > 0 && d.samples_used_ > 0,
                 "corrupt HERQULES snapshot dims");
  d.demod_ = Demodulator::load(is);
  d.bank_ = ChipMfBank::load(is);
  d.normalizer_ = FeatureNormalizer::load(is);
  d.model_ = Mlp::load(is);

  // Cross-component consistency — every index classify_into takes must be
  // provably in range before the discriminator is handed out.
  MLQR_CHECK_MSG(d.demod_.num_qubits() == d.n_qubits_ &&
                     d.bank_.num_qubits() == d.n_qubits_,
                 "HERQULES snapshot qubit counts disagree (header "
                     << d.n_qubits_ << ", demod " << d.demod_.num_qubits()
                     << ", bank " << d.bank_.num_qubits() << ')');
  const std::span<const std::size_t> active =
      active_filter_indices(d.cfg_.n_levels);
  MLQR_CHECK_MSG(d.bank_.features_per_qubit() > active.back(),
                 "HERQULES snapshot bank has too few filters for "
                     << d.cfg_.n_levels << "-level readout");
  for (std::size_t q = 0; q < d.n_qubits_; ++q)
    for (std::size_t f = 0; f < d.bank_.bank(q).feature_count(); ++f)
      MLQR_CHECK_MSG(
          d.bank_.bank(q).filter(f).length() == d.samples_used_,
          "HERQULES snapshot kernel length does not match its window");
  const std::size_t feat_dim = active.size() * d.n_qubits_;
  MLQR_CHECK_MSG(
      d.normalizer_.dim() == feat_dim && d.model_.input_size() == feat_dim,
      "HERQULES snapshot feature dims disagree (layout " << feat_dim
          << ", normalizer " << d.normalizer_.dim() << ", head "
          << d.model_.input_size() << ')');
  MLQR_CHECK_MSG(d.model_.output_size() ==
                     joint_class_count(d.n_qubits_, d.cfg_.n_levels),
                 "HERQULES snapshot head does not match its qubit/level "
                 "counts");
  return d;
}

}  // namespace mlqr
