#include "discrim/gaussian.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "linalg/stats.h"

namespace mlqr {

GaussianClassifier GaussianClassifier::fit(std::span<const double> features,
                                           std::size_t dim,
                                           std::span<const int> labels,
                                           std::size_t n_classes,
                                           GaussianKind kind, double jitter) {
  MLQR_CHECK(dim > 0 && n_classes >= 2);
  MLQR_CHECK(features.size() == labels.size() * dim);
  MLQR_CHECK(!labels.empty());

  GaussianClassifier g;
  g.kind_ = kind;
  g.dim_ = dim;
  g.means_.resize(n_classes);
  g.present_.assign(n_classes, false);

  std::vector<std::vector<std::size_t>> members(n_classes);
  for (std::size_t s = 0; s < labels.size(); ++s) {
    MLQR_CHECK(labels[s] >= 0 &&
               static_cast<std::size_t>(labels[s]) < n_classes);
    members[labels[s]].push_back(s);
  }

  if (kind == GaussianKind::kQda) {
    g.chols_.reserve(n_classes);
    for (std::size_t c = 0; c < n_classes; ++c) {
      if (members[c].size() < dim + 1) continue;  // Not enough to fit.
      g.present_[c] = true;
      g.means_[c] = column_mean(features, dim, members[c]);
      Matrix cov = covariance(features, dim, members[c], g.means_[c]);
      auto chol = Cholesky::factor(cov, jitter);
      MLQR_CHECK_MSG(chol.has_value(),
                     "QDA covariance for class " << c << " not PD");
      g.log_dets_.push_back(chol->log_det());
      g.chols_.push_back(std::move(*chol));
      // Map class -> factor index implicitly by push order; rebuild below.
    }
    // Re-index factors per class: redo with explicit slots.
    std::vector<Cholesky> chols;
    std::vector<double> log_dets(n_classes, 0.0);
    std::size_t next = 0;
    for (std::size_t c = 0; c < n_classes; ++c) {
      if (!g.present_[c]) continue;
      log_dets[c] = g.log_dets_[next];
      chols.push_back(std::move(g.chols_[next]));
      ++next;
    }
    g.chols_ = std::move(chols);
    g.log_dets_ = std::move(log_dets);
  } else {
    // LDA: pooled within-class covariance.
    Matrix pooled(dim, dim, 0.0);
    double denom = 0.0;
    for (std::size_t c = 0; c < n_classes; ++c) {
      if (members[c].size() < 2) {
        if (!members[c].empty()) {
          g.present_[c] = true;
          g.means_[c] = column_mean(features, dim, members[c]);
        }
        continue;
      }
      g.present_[c] = true;
      g.means_[c] = column_mean(features, dim, members[c]);
      Matrix cov = covariance(features, dim, members[c], g.means_[c]);
      const double w = static_cast<double>(members[c].size() - 1);
      for (std::size_t i = 0; i < dim; ++i)
        for (std::size_t j = 0; j < dim; ++j)
          pooled(i, j) += w * cov(i, j);
      denom += w;
    }
    MLQR_CHECK_MSG(denom > 0.0, "LDA needs a class with >=2 samples");
    for (std::size_t i = 0; i < dim; ++i)
      for (std::size_t j = 0; j < dim; ++j) pooled(i, j) /= denom;
    auto chol = Cholesky::factor(pooled, jitter);
    MLQR_CHECK_MSG(chol.has_value(), "LDA pooled covariance not PD");
    g.log_dets_.assign(1, chol->log_det());
    g.chols_.push_back(std::move(*chol));
  }

  bool any = false;
  for (bool p : g.present_) any = any || p;
  MLQR_CHECK_MSG(any, "no class had enough samples to fit");
  return g;
}

std::vector<double> GaussianClassifier::scores(
    std::span<const double> x) const {
  MLQR_CHECK(x.size() == dim_);
  std::vector<double> s(means_.size(),
                        -std::numeric_limits<double>::infinity());
  std::vector<double> centered(dim_);
  std::size_t qda_index = 0;
  for (std::size_t c = 0; c < means_.size(); ++c) {
    if (!present_[c]) {
      continue;
    }
    for (std::size_t d = 0; d < dim_; ++d) centered[d] = x[d] - means_[c][d];
    if (kind_ == GaussianKind::kQda) {
      const Cholesky& chol = chols_[qda_index++];
      s[c] = -0.5 * log_dets_[c] - 0.5 * chol.mahalanobis_squared(centered);
    } else {
      s[c] = -0.5 * chols_[0].mahalanobis_squared(centered);
    }
  }
  return s;
}

int GaussianClassifier::predict(std::span<const double> x) const {
  const std::vector<double> s = scores(x);
  int best = 0;
  for (std::size_t c = 1; c < s.size(); ++c)
    if (s[c] > s[best]) best = static_cast<int>(c);
  return best;
}

}  // namespace mlqr
