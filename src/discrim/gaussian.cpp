#include "discrim/gaussian.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/serialize.h"
#include "linalg/stats.h"
#include "nn/dense_stack.h"

namespace mlqr {

GaussianClassifier GaussianClassifier::fit(std::span<const double> features,
                                           std::size_t dim,
                                           std::span<const int> labels,
                                           std::size_t n_classes,
                                           GaussianKind kind, double jitter) {
  MLQR_CHECK(dim > 0 && n_classes >= 2);
  MLQR_CHECK(features.size() == labels.size() * dim);
  MLQR_CHECK(!labels.empty());

  GaussianClassifier g;
  g.kind_ = kind;
  g.dim_ = dim;
  g.means_.resize(n_classes);
  g.present_.assign(n_classes, false);

  std::vector<std::vector<std::size_t>> members(n_classes);
  for (std::size_t s = 0; s < labels.size(); ++s) {
    MLQR_CHECK(labels[s] >= 0 &&
               static_cast<std::size_t>(labels[s]) < n_classes);
    members[labels[s]].push_back(s);
  }

  if (kind == GaussianKind::kQda) {
    g.chols_.reserve(n_classes);
    for (std::size_t c = 0; c < n_classes; ++c) {
      if (members[c].size() < dim + 1) continue;  // Not enough to fit.
      g.present_[c] = true;
      g.means_[c] = column_mean(features, dim, members[c]);
      Matrix cov = covariance(features, dim, members[c], g.means_[c]);
      auto chol = Cholesky::factor(cov, jitter);
      MLQR_CHECK_MSG(chol.has_value(),
                     "QDA covariance for class " << c << " not PD");
      g.log_dets_.push_back(chol->log_det());
      g.chols_.push_back(std::move(*chol));
      // Map class -> factor index implicitly by push order; rebuild below.
    }
    // Re-index factors per class: redo with explicit slots.
    std::vector<Cholesky> chols;
    std::vector<double> log_dets(n_classes, 0.0);
    std::size_t next = 0;
    for (std::size_t c = 0; c < n_classes; ++c) {
      if (!g.present_[c]) continue;
      log_dets[c] = g.log_dets_[next];
      chols.push_back(std::move(g.chols_[next]));
      ++next;
    }
    g.chols_ = std::move(chols);
    g.log_dets_ = std::move(log_dets);
  } else {
    // LDA: pooled within-class covariance.
    Matrix pooled(dim, dim, 0.0);
    double denom = 0.0;
    for (std::size_t c = 0; c < n_classes; ++c) {
      if (members[c].size() < 2) {
        if (!members[c].empty()) {
          g.present_[c] = true;
          g.means_[c] = column_mean(features, dim, members[c]);
        }
        continue;
      }
      g.present_[c] = true;
      g.means_[c] = column_mean(features, dim, members[c]);
      Matrix cov = covariance(features, dim, members[c], g.means_[c]);
      const double w = static_cast<double>(members[c].size() - 1);
      for (std::size_t i = 0; i < dim; ++i)
        for (std::size_t j = 0; j < dim; ++j)
          pooled(i, j) += w * cov(i, j);
      denom += w;
    }
    MLQR_CHECK_MSG(denom > 0.0, "LDA needs a class with >=2 samples");
    for (std::size_t i = 0; i < dim; ++i)
      for (std::size_t j = 0; j < dim; ++j) pooled(i, j) /= denom;
    auto chol = Cholesky::factor(pooled, jitter);
    MLQR_CHECK_MSG(chol.has_value(), "LDA pooled covariance not PD");
    g.log_dets_.assign(1, chol->log_det());
    g.chols_.push_back(std::move(*chol));
  }

  bool any = false;
  for (bool p : g.present_) any = any || p;
  MLQR_CHECK_MSG(any, "no class had enough samples to fit");
  return g;
}

void GaussianClassifier::save(std::ostream& os) const {
  io::write_u8(os, kind_ == GaussianKind::kQda ? 1 : 0);
  io::write_u64(os, dim_);
  io::write_u64(os, means_.size());
  for (std::size_t c = 0; c < means_.size(); ++c) {
    io::write_bool(os, present_[c]);
    if (present_[c]) io::write_vec_f64(os, means_[c]);
  }
  io::write_vec_f64(os, log_dets_);
  io::write_u64(os, chols_.size());
  for (const Cholesky& chol : chols_) chol.save(os);
}

GaussianClassifier GaussianClassifier::load(std::istream& is) {
  GaussianClassifier g;
  const std::uint8_t kind = io::read_u8(is);
  MLQR_CHECK_MSG(kind <= 1, "corrupt Gaussian classifier kind "
                                << static_cast<int>(kind));
  g.kind_ = kind == 1 ? GaussianKind::kQda : GaussianKind::kLda;
  g.dim_ = io::read_count(is, 1u << 12);
  const std::size_t n_classes = io::read_count(is, 4096);
  MLQR_CHECK_MSG(g.dim_ > 0 && n_classes >= 2,
                 "corrupt Gaussian classifier dims");
  g.means_.resize(n_classes);
  g.present_.assign(n_classes, false);
  std::size_t n_present = 0;
  for (std::size_t c = 0; c < n_classes; ++c) {
    if (!io::read_bool(is)) continue;
    g.present_[c] = true;
    ++n_present;
    g.means_[c] = io::read_vec_f64(is);
    MLQR_CHECK_MSG(g.means_[c].size() == g.dim_,
                   "Gaussian class mean does not match its dimension");
  }
  MLQR_CHECK_MSG(n_present > 0, "Gaussian classifier has no fitted class");
  g.log_dets_ = io::read_vec_f64(is);
  const std::size_t n_chols = io::read_count(is, 4096);
  g.chols_.reserve(n_chols);
  for (std::size_t i = 0; i < n_chols; ++i)
    g.chols_.push_back(Cholesky::load(is));
  // scores() walks the factors by the fit-time layout — one pooled factor
  // for LDA, one per present class (with per-class log-dets) for QDA; a
  // stream whose layout disagrees with its kind byte must not half-load.
  const bool qda = g.kind_ == GaussianKind::kQda;
  MLQR_CHECK_MSG(
      qda ? g.chols_.size() == n_present && g.log_dets_.size() == n_classes
          : g.chols_.size() == 1 && g.log_dets_.size() == 1,
      "Gaussian classifier factor layout does not match its kind");
  for (const Cholesky& chol : g.chols_)
    MLQR_CHECK_MSG(chol.lower().rows() == g.dim_,
                   "Gaussian classifier factor does not match its dimension");
  return g;
}

std::vector<double> GaussianClassifier::scores(
    std::span<const double> x) const {
  MLQR_CHECK(x.size() == dim_);
  std::vector<double> s(means_.size(),
                        -std::numeric_limits<double>::infinity());
  std::vector<double> centered(dim_);
  std::size_t qda_index = 0;
  for (std::size_t c = 0; c < means_.size(); ++c) {
    if (!present_[c]) {
      continue;
    }
    for (std::size_t d = 0; d < dim_; ++d) centered[d] = x[d] - means_[c][d];
    if (kind_ == GaussianKind::kQda) {
      const Cholesky& chol = chols_[qda_index++];
      s[c] = -0.5 * log_dets_[c] - 0.5 * chol.mahalanobis_squared(centered);
    } else {
      s[c] = -0.5 * chols_[0].mahalanobis_squared(centered);
    }
  }
  return s;
}

int GaussianClassifier::predict(std::span<const double> x) const {
  const std::vector<double> s = scores(x);
  return argmax_tie_low(std::span<const double>(s));
}

}  // namespace mlqr
