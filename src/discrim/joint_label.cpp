#include "discrim/joint_label.h"

#include <limits>

#include "common/error.h"

namespace mlqr {

std::size_t joint_class_count(std::size_t n_qubits, int n_levels) {
  MLQR_CHECK(n_levels >= 2 && n_qubits > 0);
  std::size_t total = 1;
  for (std::size_t q = 0; q < n_qubits; ++q) {
    MLQR_CHECK_MSG(total <= std::numeric_limits<std::size_t>::max() /
                                static_cast<std::size_t>(n_levels),
                   "joint class count overflow");
    total *= static_cast<std::size_t>(n_levels);
  }
  return total;
}

std::size_t encode_joint(std::span<const int> levels, int n_levels) {
  MLQR_CHECK(!levels.empty());
  std::size_t joint = 0;
  std::size_t base = 1;
  for (int level : levels) {
    MLQR_CHECK_MSG(level >= 0 && level < n_levels,
                   "level " << level << " out of [0," << n_levels << ')');
    joint += base * static_cast<std::size_t>(level);
    base *= static_cast<std::size_t>(n_levels);
  }
  return joint;
}

std::vector<int> decode_joint(std::size_t joint, std::size_t n_qubits,
                              int n_levels) {
  std::vector<int> levels(n_qubits);
  decode_joint_into(joint, n_levels, levels);
  return levels;
}

void decode_joint_into(std::size_t joint, int n_levels, std::span<int> out) {
  const std::size_t total = joint_class_count(out.size(), n_levels);
  MLQR_CHECK_MSG(joint < total, "joint index " << joint << " out of range");
  for (std::size_t q = 0; q < out.size(); ++q) {
    out[q] = static_cast<int>(joint % static_cast<std::size_t>(n_levels));
    joint /= static_cast<std::size_t>(n_levels);
  }
}

}  // namespace mlqr
