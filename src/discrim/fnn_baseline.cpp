#include "discrim/fnn_baseline.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"
#include "discrim/joint_label.h"

namespace mlqr {


std::vector<float> FnnDiscriminator::raw_features(const IqTrace& trace) const {
  std::vector<float> x;
  raw_features_into(trace, x);
  return x;
}

void FnnDiscriminator::raw_features_into(const IqTrace& trace,
                                         std::vector<float>& x) const {
  MLQR_CHECK(trace.size() >= samples_used_);
  x.clear();
  x.reserve(2 * samples_used_);
  x.insert(x.end(), trace.i.begin(), trace.i.begin() + samples_used_);
  x.insert(x.end(), trace.q.begin(), trace.q.begin() + samples_used_);
}

FnnDiscriminator FnnDiscriminator::train(const ShotSet& shots,
                                         std::span<const int> labels_flat,
                                         std::span<const std::size_t> train_idx,
                                         const ChipProfile& chip,
                                         const FnnConfig& cfg) {
  shots.validate();
  MLQR_CHECK(labels_flat.size() == shots.size() * shots.n_qubits);
  MLQR_CHECK(!train_idx.empty());
  MLQR_CHECK(cfg.n_levels >= 2 && cfg.n_levels <= kNumLevels);

  FnnDiscriminator d;
  d.cfg_ = cfg;
  d.n_qubits_ = shots.n_qubits;
  d.samples_used_ = chip.window_samples(cfg.duration_ns);

  // Two-level mode cannot represent leaked shots; drop them from training
  // (that is exactly what a two-level-era pipeline would do).
  std::vector<std::size_t> usable;
  usable.reserve(train_idx.size());
  for (std::size_t s : train_idx) {
    bool ok = true;
    for (std::size_t q = 0; q < shots.n_qubits && ok; ++q)
      ok = labels_flat[s * shots.n_qubits + q] < cfg.n_levels;
    if (ok) usable.push_back(s);
  }
  MLQR_CHECK_MSG(!usable.empty(), "no usable training shots for FNN");

  const std::size_t in_dim = 2 * d.samples_used_;
  std::vector<float> features(usable.size() * in_dim);
  std::vector<int> joint(usable.size());
  for (std::size_t i = 0; i < usable.size(); ++i) {
    const std::vector<float> x = d.raw_features(shots.traces[usable[i]]);
    std::copy(x.begin(), x.end(), features.begin() + i * in_dim);
    joint[i] = static_cast<int>(encode_joint(
        labels_flat.subspan(usable[i] * shots.n_qubits, shots.n_qubits),
        cfg.n_levels));
  }

  d.normalizer_ = FeatureNormalizer::fit(features, in_dim);
  d.normalizer_.apply(features);

  std::vector<std::size_t> sizes{in_dim};
  sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
  const std::size_t n_classes =
      joint_class_count(shots.n_qubits, cfg.n_levels);
  sizes.push_back(n_classes);

  Rng init_rng(cfg.trainer.seed);
  d.model_ = Mlp(sizes);
  d.model_.init_weights(init_rng);
  TrainerConfig tcfg = cfg.trainer;
  if (cfg.balance_classes) {
    tcfg.class_weights = inverse_frequency_weights(joint, n_classes);
    for (float& w : tcfg.class_weights)
      w = std::min(w, cfg.class_weight_cap);
  }
  train_classifier(d.model_, features, joint, tcfg);
  return d;
}

std::vector<int> FnnDiscriminator::classify(const IqTrace& trace) const {
  InferenceScratch scratch;
  std::vector<int> out(n_qubits_);
  classify_into(trace, scratch, out);
  return out;
}

void FnnDiscriminator::classify_into(const IqTrace& trace,
                                     InferenceScratch& scratch,
                                     std::span<int> out) const {
  MLQR_CHECK(out.size() == n_qubits_);
  std::vector<float>& x = scratch.features;
  raw_features_into(trace, x);
  normalizer_.apply(x);
  const int joint =
      model_.predict_reusing(x, scratch.logits, scratch.activations);
  decode_joint_into(static_cast<std::size_t>(joint), cfg_.n_levels, out);
}

void FnnDiscriminator::classify_batch_into(
    std::size_t lo, std::size_t hi, const ShotFrameAt& frame_at,
    InferenceScratch& scratch, const ShotLabelsAt& labels_at) const {
  const std::size_t in_dim = 2 * samples_used_;
  // Tile so the raw-trace feature rows (1000 floats each for the paper's
  // 500-sample window) stay cache-resident next to the first hidden layer.
  constexpr std::size_t kBatchTile = 32;
  for (std::size_t base = lo; base < hi; base += kBatchTile) {
    const std::size_t tile = std::min(kBatchTile, hi - base);
    scratch.batch_features.resize(tile * in_dim);
    for (std::size_t s = 0; s < tile; ++s) {
      const IqTrace& trace = frame_at(base + s);
      MLQR_CHECK(trace.size() >= samples_used_);
      float* row = scratch.batch_features.data() + s * in_dim;
      std::copy_n(trace.i.begin(), samples_used_, row);
      std::copy_n(trace.q.begin(), samples_used_, row + samples_used_);
    }
    // One standardization pass over the whole tile: the normalizer is a
    // per-column affine map, so each row comes out identical to the
    // per-shot raw_features_into + apply sequence.
    normalizer_.apply(scratch.batch_features);
    scratch.batch_labels.resize(tile);
    model_.classify_batch_into(tile, scratch.batch_features.data(),
                               scratch.batch_act_a, scratch.batch_act_b,
                               scratch.batch_labels.data(), 1);
    for (std::size_t s = 0; s < tile; ++s) {
      const std::span<int> out = labels_at(base + s);
      MLQR_CHECK(out.size() == n_qubits_);
      decode_joint_into(static_cast<std::size_t>(scratch.batch_labels[s]),
                        cfg_.n_levels, out);
    }
  }
}

float FnnDiscriminator::classify_scored_into(const IqTrace& trace,
                                             InferenceScratch& scratch,
                                             std::span<int> out) const {
  MLQR_CHECK(out.size() == n_qubits_);
  std::vector<float>& x = scratch.features;
  raw_features_into(trace, x);
  normalizer_.apply(x);
  float p_max = 0.0f;
  const int joint = model_.predict_scored_reusing(x, scratch.logits,
                                                  scratch.activations, p_max);
  decode_joint_into(static_cast<std::size_t>(joint), cfg_.n_levels, out);
  return p_max;
}

void FnnDiscriminator::save(std::ostream& os) const {
  io::write_u32(os, static_cast<std::uint32_t>(cfg_.n_levels));
  io::write_u64(os, n_qubits_);
  io::write_u64(os, samples_used_);
  normalizer_.save(os);
  model_.save(os);
}

FnnDiscriminator FnnDiscriminator::load(std::istream& is) {
  FnnDiscriminator d;
  const std::uint32_t n_levels = io::read_u32(is);
  MLQR_CHECK_MSG(
      n_levels >= 2 && n_levels <= static_cast<std::uint32_t>(kNumLevels),
      "corrupt FNN snapshot: " << n_levels << " levels");
  d.cfg_.n_levels = static_cast<int>(n_levels);
  d.n_qubits_ = io::read_count(is, 4096);
  d.samples_used_ = io::read_count(is);
  MLQR_CHECK_MSG(d.n_qubits_ > 0 && d.samples_used_ > 0,
                 "corrupt FNN snapshot dims");
  d.normalizer_ = FeatureNormalizer::load(is);
  d.model_ = Mlp::load(is);
  // Cross-component consistency: the raw-trace layout fixes the input
  // width, and the joint head must be exactly k^n wide
  // (joint_class_count throws on overflow, so a hostile qubit count dies
  // here rather than sizing anything).
  const std::size_t in_dim = 2 * d.samples_used_;
  MLQR_CHECK_MSG(
      d.normalizer_.dim() == in_dim && d.model_.input_size() == in_dim,
      "FNN snapshot input dims disagree (window " << d.samples_used_
          << ", normalizer " << d.normalizer_.dim() << ", network "
          << d.model_.input_size() << ')');
  MLQR_CHECK_MSG(d.model_.output_size() ==
                     joint_class_count(d.n_qubits_, d.cfg_.n_levels),
                 "FNN snapshot head does not match its qubit/level counts");
  return d;
}

}  // namespace mlqr
