#include "discrim/quantized_proposed.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/serialize.h"
#include "nn/normalizer.h"

namespace mlqr {

QuantizedProposedDiscriminator QuantizedProposedDiscriminator::quantize(
    const ProposedDiscriminator& d, const ShotSet& calib,
    std::span<const std::size_t> calib_idx, const QuantizationConfig& cfg) {
  MLQR_CHECK(d.num_qubits() > 0);
  MLQR_CHECK(!calib_idx.empty());
  MLQR_CHECK(cfg.max_calibration_shots > 0);
  const std::size_t n_use =
      std::min(calib_idx.size(), cfg.max_calibration_shots);
  const std::size_t feat_dim = d.feature_dim();
  const std::size_t n_samples = d.samples_used();

  // Range calibration in one sweep: the ADC-side |I|/|Q| bound that sets
  // the trace code grid, and the float path's normalized features that set
  // the NN input grid and the heads' activation ranges. The subsample
  // strides across calib_idx rather than taking a prefix: dataset splits
  // are grouped by prepared basis state, and a prefix would calibrate
  // ranges almost exclusively on ground-state shots.
  const std::size_t stride = calib_idx.size() / n_use;
  double trace_bound = 0.0;
  std::vector<float> feats(n_use * feat_dim, 0.0f);
  InferenceScratch scratch;
  for (std::size_t k = 0; k < n_use; ++k) {
    const IqTrace& tr = calib.traces.at(calib_idx[k * stride]);
    const std::size_t n = std::min(tr.size(), n_samples);
    for (std::size_t t = 0; t < n; ++t) {
      trace_bound = std::max(trace_bound, std::abs(static_cast<double>(tr.i[t])));
      trace_bound = std::max(trace_bound, std::abs(static_cast<double>(tr.q[t])));
    }
    d.features_into(tr, scratch);
    MLQR_CHECK(scratch.features.size() == feat_dim);
    std::copy(scratch.features.begin(), scratch.features.end(),
              feats.begin() + k * feat_dim);
  }
  trace_bound = std::max(trace_bound, 1e-6);

  // Feature grid: observed range with 25% headroom, never past the
  // normalizer's winsorization bound (fresh-data tails saturate there on
  // both paths).
  double feat_bound = 0.0;
  for (float f : feats)
    feat_bound = std::max(feat_bound, std::abs(static_cast<double>(f)));
  feat_bound = std::clamp(1.25 * feat_bound, 1.0,
                          static_cast<double>(kMaxAbsFeatureZ));
  const FixedPointFormat feature_fmt =
      saturating_format(-feat_bound, feat_bound, cfg.activation_bits);

  QuantizedProposedDiscriminator q;
  q.cfg_ = cfg;
  q.frontend_ =
      QuantizedFrontend::build(d.demodulator(), d.mf_bank(), d.normalizer(),
                               n_samples, trace_bound, feature_fmt, cfg);
  q.heads_.reserve(d.num_qubits());
  for (std::size_t qubit = 0; qubit < d.num_qubits(); ++qubit)
    q.heads_.push_back(
        QuantizedMlp::quantize(d.qubit_model(qubit), feats, feature_fmt, cfg));
  return q;
}

std::vector<int> QuantizedProposedDiscriminator::classify(
    const IqTrace& trace) const {
  InferenceScratch scratch;
  std::vector<int> out(heads_.size());
  classify_into(trace, scratch, out);
  return out;
}

void QuantizedProposedDiscriminator::classify_into(const IqTrace& trace,
                                                   InferenceScratch& scratch,
                                                   std::span<int> out) const {
  MLQR_CHECK(out.size() == heads_.size());
  frontend_.features_into(trace, scratch);
  for (std::size_t q = 0; q < heads_.size(); ++q)
    out[q] = heads_[q].predict(scratch.int_features, scratch.int_logits,
                               scratch.int_act_a, scratch.int_act_b);
}

void QuantizedProposedDiscriminator::classify_batch_into(
    std::size_t lo, std::size_t hi, const ShotFrameAt& frame_at,
    InferenceScratch& scratch, const ShotLabelsAt& labels_at) const {
  const std::size_t n_qubits = heads_.size();
  const std::size_t feat_dim = frontend_.n_filters();
  constexpr std::size_t kBatchTile = 128;
  for (std::size_t base = lo; base < hi; base += kBatchTile) {
    const std::size_t tile = std::min(kBatchTile, hi - base);
    scratch.batch_int_features.resize(tile * feat_dim);
    const IqTrace* frames[kBatchTile];
    for (std::size_t s = 0; s < tile; ++s) frames[s] = &frame_at(base + s);
    frontend_.features_block_into(tile, frames, scratch,
                                  scratch.batch_int_features.data(), feat_dim);
    scratch.batch_labels.resize(tile * n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q)
      heads_[q].classify_batch_into(
          tile, scratch.batch_int_features.data(), scratch.batch_i16_act_a,
          scratch.batch_i16_act_b, scratch.batch_i64_logits,
          scratch.batch_labels.data() + q, n_qubits);
    for (std::size_t s = 0; s < tile; ++s) {
      const std::span<int> out = labels_at(base + s);
      MLQR_CHECK(out.size() == n_qubits);
      std::copy_n(scratch.batch_labels.data() + s * n_qubits, n_qubits,
                  out.begin());
    }
  }
}

void QuantizedProposedDiscriminator::save(std::ostream& os) const {
  MLQR_CHECK_MSG(!heads_.empty(), "cannot save an uncalibrated discriminator");
  save_quantization_config(os, cfg_);
  frontend_.save(os);
  io::write_u64(os, heads_.size());
  for (const QuantizedMlp& h : heads_) h.save(os);
}

QuantizedProposedDiscriminator QuantizedProposedDiscriminator::load(
    std::istream& is) {
  QuantizedProposedDiscriminator q;
  q.cfg_ = load_quantization_config(is);
  q.frontend_ = QuantizedFrontend::load(is);
  const std::size_t n_heads = io::read_count(is, 4096);
  q.heads_.reserve(n_heads);
  for (std::size_t h = 0; h < n_heads; ++h)
    q.heads_.push_back(QuantizedMlp::load(is));

  MLQR_CHECK_MSG(n_heads == q.frontend_.num_qubits(),
                 "snapshot has " << n_heads << " integer heads for "
                                 << q.frontend_.num_qubits() << " qubits");
  for (const QuantizedMlp& h : q.heads_) {
    MLQR_CHECK_MSG(h.input_size() == q.frontend_.n_filters(),
                   "snapshot integer head reads " << h.input_size()
                       << " features, front-end emits "
                       << q.frontend_.n_filters());
    MLQR_CHECK_MSG(h.output_size() == static_cast<std::size_t>(kNumLevels),
                   "snapshot integer head emits " << h.output_size()
                                                  << " levels");
    // The front-end writes feature codes on feature_format(); the first
    // layer must consume exactly that grid or the requant chain shifts by
    // the wrong amount — a silent misclassification, so check it hard.
    const FixedPointFormat& in = h.layers().front().in_fmt;
    MLQR_CHECK_MSG(in.total_bits == q.frontend_.feature_format().total_bits &&
                       in.frac_bits == q.frontend_.feature_format().frac_bits,
                   "snapshot head input grid <" << in.total_bits << ','
                       << in.frac_bits << "> != front-end feature grid <"
                       << q.frontend_.feature_format().total_bits << ','
                       << q.frontend_.feature_format().frac_bits << '>');
  }
  return q;
}

CalibratedFormats QuantizedProposedDiscriminator::calibrated_formats() const {
  CalibratedFormats fmts;
  fmts.trace = frontend_.trace_format();
  fmts.feature = frontend_.feature_format();
  fmts.weight_bits = cfg_.weight_bits;
  fmts.activation_bits = cfg_.activation_bits;
  fmts.accum_bits = cfg_.accum_bits;
  int min_frac = 48;
  for (std::size_t f = 0; f < frontend_.n_filters(); ++f)
    min_frac = std::min(min_frac, frontend_.kernel_format(f).frac_bits);
  for (const QuantizedMlp& head : heads_)
    for (const QuantizedDenseLayer& l : head.layers())
      min_frac = std::min(min_frac, l.weight_fmt.frac_bits);
  fmts.min_weight_frac_bits = min_frac;
  return fmts;
}

DesignSpec QuantizedProposedDiscriminator::design_spec() const {
  DesignSpec spec;
  spec.name = name();
  spec.demod_channels = num_qubits();
  spec.matched_filters = frontend_.n_filters();
  spec.mf_kernel_len = frontend_.n_samples();
  for (const QuantizedMlp& head : heads_) {
    std::vector<std::size_t> sizes;
    sizes.push_back(head.input_size());
    for (const QuantizedDenseLayer& l : head.layers()) sizes.push_back(l.out);
    spec.nns.push_back(std::move(sizes));
  }
  spec.hls = hls_config_from_formats(cfg_.weight_bits, cfg_.accum_bits);
  return spec;
}

}  // namespace mlqr
