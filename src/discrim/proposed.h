// The paper's proposed discriminator (SSV, Fig 4).
//
// Per-qubit banks of nine matched filters (QMF x3, RMF x3, EMF x3) condense
// the demodulated traces to 9 scores per qubit; the scores of *all* qubits
// are merged (45 features for the five-qubit chip) and fed to one small
// per-qubit MLP (P -> P/2 -> P/4 -> k). Each head sees every qubit's filter
// outputs, so crosstalk is correctable, while the output layer stays k-wide
// — polynomial scaling in (n, k) instead of the k^n blowup of joint
// designs. Per-class loss weighting keeps the rare |2> level calibrated.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "discrim/inference_scratch.h"
#include "discrim/shot_set.h"
#include "dsp/demodulator.h"
#include "dsp/fused_frontend.h"
#include "mf/mf_bank.h"
#include "nn/mlp.h"
#include "nn/normalizer.h"
#include "nn/trainer.h"
#include "sim/chip_profile.h"

namespace mlqr {

struct ProposedConfig {
  MfBankConfig mf;          ///< Which filter groups to use (all three
                            ///  for the full design; QMF-only reproduces
                            ///  the Table V "NN" ablation).
  static TrainerConfig default_trainer() {
    TrainerConfig t;
    t.epochs = 40;
    t.batch_size = 64;
    t.learning_rate = 2e-3f;
    t.seed = 77;
    // The |2> level contributes only a handful of (heavily weighted) mined
    // traces; decoupled weight decay keeps the heads from memorizing them,
    // and epoch selection on a validation split would be driven by the 1-2
    // minority samples it contains — fixed-epoch training is more stable.
    t.weight_decay = 0.05f;
    t.validation_fraction = 0.0f;
    return t;
  }
  TrainerConfig trainer = default_trainer();
  /// Hidden sizes; empty -> the paper's {P/2, P/4}.
  std::vector<std::size_t> hidden;
  /// Readout duration (0 = full trace) — Fig 5(b) sweeps this.
  double duration_ns = 0.0;
  /// Inverse-frequency class weights for the rare |2> level.
  bool balance_classes = true;
};

/// Trained instance of the proposed design.
class ProposedDiscriminator {
 public:
  static ProposedDiscriminator train(const ShotSet& shots,
                                     std::span<const int> labels_flat,
                                     std::span<const std::size_t> train_idx,
                                     const ChipProfile& chip,
                                     const ProposedConfig& cfg);

  /// Per-qubit level predictions for one multiplexed trace. Thread-safe.
  std::vector<int> classify(const IqTrace& trace) const;

  /// Allocation-free classify: demod -> matched filters -> per-qubit heads
  /// entirely inside `scratch`'s reused buffers. `out` must hold
  /// num_qubits() entries. Thread-safe as long as each thread owns its
  /// scratch.
  void classify_into(const IqTrace& trace, InferenceScratch& scratch,
                     std::span<int> out) const;

  /// Batched classify over shots [lo, hi): per-shot front-end feature
  /// vectors are gathered into a row-major tile in `scratch`, each head's
  /// MLP runs as one serial GEMM per layer over the whole tile, and the
  /// argmax labels are scattered back through `labels_at(s)` (a
  /// num_qubits()-wide span per shot). Labels are bit-identical to
  /// classify_into on every shot — the batched and per-shot float kernels
  /// share dot-product blocking and accumulation order (see
  /// Mlp::classify_batch_into). Thread-safe for distinct scratches.
  void classify_batch_into(std::size_t lo, std::size_t hi,
                           const ShotFrameAt& frame_at,
                           InferenceScratch& scratch,
                           const ShotLabelsAt& labels_at) const;

  /// classify_into plus a confidence score: the mean (over qubits) softmax
  /// probability of each head's winning level, in (0, 1]. Labels are
  /// bit-identical to classify_into (same logits, same tie-low argmax) —
  /// this feeds the streaming drift monitors, never the decision rule.
  float classify_scored_into(const IqTrace& trace, InferenceScratch& scratch,
                             std::span<int> out) const;

  /// Allocation-free feature extraction into scratch.features (normalized,
  /// same values as features()). Runs the fused one-pass front-end
  /// (FusedFrontend: LO-pre-rotated float kernels over the raw trace, no
  /// intermediate baseband buffer).
  void features_into(const IqTrace& trace, InferenceScratch& scratch) const;

  /// The unfused reference pipeline (demodulate per qubit -> matched
  /// filters -> normalizer). Same features as features_into up to float
  /// rounding — kept compiled on every platform as the semantic reference
  /// the fused path is tested against.
  void features_into_reference(const IqTrace& trace,
                               InferenceScratch& scratch) const;

  std::string name() const { return "OURS"; }

  std::size_t num_qubits() const { return models_.size(); }
  std::size_t feature_dim() const;
  /// Total NN parameters across all per-qubit heads (model-size claims).
  std::size_t parameter_count() const;

  const Mlp& qubit_model(std::size_t q) const { return models_.at(q); }
  Mlp& mutable_qubit_model(std::size_t q) { return models_.at(q); }
  const ChipMfBank& mf_bank() const { return bank_; }
  const Demodulator& demodulator() const { return demod_; }
  const FeatureNormalizer& normalizer() const { return normalizer_; }
  const FusedFrontend& fused_frontend() const { return fused_; }
  std::size_t samples_used() const { return samples_used_; }

  /// Raw (normalized) feature vector for one trace — exposed for the
  /// quantization study and the FPGA cost model.
  std::vector<float> features(const IqTrace& trace) const;

  /// Binary little-endian persistence of the full inference state (demod
  /// plan, filter banks, normalizer, fused front-end, per-qubit heads).
  /// Training-only knobs (TrainerConfig, class weights) are not part of a
  /// snapshot; a reloaded instance classifies bit-identically but cannot
  /// resume training. Prefer pipeline/snapshot.h's save_backend /
  /// load_backend wrappers, which add the magic+version header.
  void save(std::ostream& os) const;
  static ProposedDiscriminator load(std::istream& is);

 private:
  ProposedConfig cfg_;
  Demodulator demod_;
  std::size_t samples_used_ = 0;
  ChipMfBank bank_;
  FeatureNormalizer normalizer_;
  FusedFrontend fused_;      ///< One-pass inference front-end.
  std::vector<Mlp> models_;  ///< One head per qubit.
};

}  // namespace mlqr
