// Linear and quadratic discriminant analysis over real feature vectors.
//
// The paper's Table V baselines: class-conditional Gaussians with a shared
// covariance (LDA) or per-class covariances (QDA), uniform priors (the
// macro fidelity metric scores levels equally, so balanced priors are the
// matching Bayes rule).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/matrix.h"

namespace mlqr {

enum class GaussianKind { kLda, kQda };

/// Gaussian classifier over row-major double features.
class GaussianClassifier {
 public:
  /// Fits from (n x dim) features and labels in [0, n_classes). Classes
  /// absent from the data keep a -inf discriminant (never predicted).
  /// `jitter` regularizes covariances from small classes.
  static GaussianClassifier fit(std::span<const double> features,
                                std::size_t dim, std::span<const int> labels,
                                std::size_t n_classes, GaussianKind kind,
                                double jitter = 1e-6);

  int predict(std::span<const double> x) const;

  /// Per-class discriminant scores (log-posterior up to a constant).
  std::vector<double> scores(std::span<const double> x) const;

  GaussianKind kind() const { return kind_; }
  std::size_t dim() const { return dim_; }
  std::size_t n_classes() const { return means_.size(); }

  /// Binary little-endian persistence (calibration snapshot leaf): kind,
  /// dims, per-class means/presence, and the exact Cholesky factors —
  /// scores() on a reloaded classifier is bit-identical. load throws
  /// mlqr::Error unless the factor layout matches the kind exactly (one
  /// pooled factor for LDA, one per present class for QDA).
  void save(std::ostream& os) const;
  static GaussianClassifier load(std::istream& is);

 private:
  GaussianKind kind_ = GaussianKind::kLda;
  std::size_t dim_ = 0;
  std::vector<std::vector<double>> means_;      ///< Per class (empty if absent).
  std::vector<Cholesky> chols_;                 ///< Per class (QDA) or [0] (LDA).
  std::vector<double> log_dets_;                ///< Matching chols_.
  std::vector<bool> present_;
};

}  // namespace mlqr
