#include "discrim/iq_features.h"

#include "common/error.h"
#include "dsp/filters.h"

namespace mlqr {

std::vector<double> mtv_features(const BasebandTrace& trace) {
  const Complexd m = mean_trace_value(trace);
  return {m.real(), m.imag()};
}

std::vector<double> split_window_features(const BasebandTrace& trace,
                                          double split_fraction) {
  MLQR_CHECK(split_fraction > 0.0 && split_fraction < 1.0);
  const std::size_t n = trace.size();
  MLQR_CHECK(n >= 2);
  const std::size_t cut = std::max<std::size_t>(
      1, static_cast<std::size_t>(split_fraction * static_cast<double>(n)));
  const Complexd early = window_mean(trace, 0, cut);
  const Complexd late = window_mean(trace, cut, n);
  return {early.real(), early.imag(), late.real(), late.imag()};
}

}  // namespace mlqr
