#include "discrim/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/parallel.h"

namespace mlqr {

void QubitConfusion::add(int true_level, int assigned) {
  MLQR_CHECK(true_level >= 0 && true_level < kNumLevels);
  MLQR_CHECK(assigned >= 0 && assigned < kNumLevels);
  ++counts[true_level][assigned];
}

std::size_t QubitConfusion::total() const {
  std::size_t n = 0;
  for (const auto& row : counts)
    for (std::size_t c : row) n += c;
  return n;
}

std::size_t QubitConfusion::row_total(int true_level) const {
  MLQR_CHECK(true_level >= 0 && true_level < kNumLevels);
  std::size_t n = 0;
  for (std::size_t c : counts[true_level]) n += c;
  return n;
}

double QubitConfusion::per_level_accuracy(int level) const {
  const std::size_t n = row_total(level);
  if (n == 0) return 1.0;
  return static_cast<double>(counts[level][level]) / static_cast<double>(n);
}

double QubitConfusion::macro_fidelity() const {
  double acc = 0.0;
  int present = 0;
  for (int l = 0; l < kNumLevels; ++l) {
    if (row_total(l) == 0) continue;
    acc += per_level_accuracy(l);
    ++present;
  }
  MLQR_CHECK_MSG(present > 0, "confusion matrix is empty");
  return acc / present;
}

double QubitConfusion::micro_fidelity() const {
  const std::size_t n = total();
  MLQR_CHECK(n > 0);
  std::size_t hits = 0;
  for (int l = 0; l < kNumLevels; ++l) hits += counts[l][l];
  return static_cast<double>(hits) / static_cast<double>(n);
}

double FidelityReport::qubit_fidelity(std::size_t q) const {
  MLQR_CHECK(q < per_qubit.size());
  return per_qubit[q].macro_fidelity();
}

double FidelityReport::geometric_mean_fidelity() const {
  MLQR_CHECK(!per_qubit.empty());
  double log_acc = 0.0;
  for (const QubitConfusion& c : per_qubit)
    log_acc += std::log(std::max(c.macro_fidelity(), 1e-12));
  return std::exp(log_acc / static_cast<double>(per_qubit.size()));
}

double FidelityReport::mean_fidelity_excluding(
    std::span<const std::size_t> excluded) const {
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t q = 0; q < per_qubit.size(); ++q) {
    if (std::find(excluded.begin(), excluded.end(), q) != excluded.end())
      continue;
    acc += per_qubit[q].macro_fidelity();
    ++n;
  }
  MLQR_CHECK_MSG(n > 0, "all qubits excluded");
  return acc / static_cast<double>(n);
}

double FidelityReport::readout_error_excluding(
    std::span<const std::size_t> excluded) const {
  return 1.0 - mean_fidelity_excluding(excluded);
}

FidelityReport evaluate_classifier(const ShotClassifier& classify,
                                   const ShotSet& shots,
                                   std::span<const std::size_t> subset) {
  shots.validate();
  MLQR_CHECK(!subset.empty());

  // Per-shot predictions in parallel, then a serial reduction.
  std::vector<std::vector<int>> predictions(subset.size());
  parallel_for(0, subset.size(), [&](std::size_t i) {
    predictions[i] = classify(shots.traces[subset[i]]);
  });

  FidelityReport report;
  report.per_qubit.resize(shots.n_qubits);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    MLQR_CHECK_MSG(predictions[i].size() == shots.n_qubits,
                   "classifier returned " << predictions[i].size()
                                          << " labels for " << shots.n_qubits
                                          << " qubits");
    const std::span<const int> truth = shots.shot_labels(subset[i]);
    for (std::size_t q = 0; q < shots.n_qubits; ++q)
      report.per_qubit[q].add(truth[q], predictions[i][q]);
  }
  return report;
}

}  // namespace mlqr
