// Int8 fixed-point twin of the proposed discriminator — the W=8 point of
// the paper's quantization ablation (Fig 6) promoted from an offline study
// to a first-class serving datapath.
//
// The front-end is the same fused int16 demod+matched-filter engine as the
// int16 design (QuantizedFrontend — its kernel/trace grids are calibrated
// independently of the head width); only the per-qubit heads narrow to
// int8 weights and 8-bit activation codes running on simd::dot_u8i8
// (vpdpbusd on VNNI hosts). Per-shot inference is pure integer arithmetic,
// so labels are bit-identical across batch sizes, thread counts, shards
// and SIMD tiers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/fixed_point.h"
#include "discrim/inference_scratch.h"
#include "discrim/proposed.h"
#include "discrim/quantized_proposed.h"
#include "discrim/shot_set.h"
#include "dsp/quantized_frontend.h"
#include "nn/quantized8_mlp.h"

namespace mlqr {

/// Trained-then-quantized int8 instance of the proposed design.
class Quantized8ProposedDiscriminator {
 public:
  /// The narrow-datapath defaults: 8-bit weight and activation codes, a
  /// 24-bit saturating accumulator (the Fig 6 ablation's W=8 grid with the
  /// accumulator sized so int32 holds every logit).
  static QuantizationConfig default_config() {
    QuantizationConfig cfg;
    cfg.weight_bits = 8;
    cfg.activation_bits = 8;
    cfg.accum_bits = 24;
    return cfg;
  }

  /// Quantizes a trained float discriminator through the same calibration
  /// recipe as the int16 twin (identical code minting at equal widths),
  /// then narrows the heads to the int8 datapath. cfg must satisfy the
  /// Quantized8Mlp width contract (weight/activation bits in [2, 8],
  /// accum_bits in [8, 31]).
  static Quantized8ProposedDiscriminator quantize(
      const ProposedDiscriminator& d, const ShotSet& calib,
      std::span<const std::size_t> calib_idx,
      const QuantizationConfig& cfg = default_config());

  /// Per-qubit level predictions for one multiplexed trace. Thread-safe.
  std::vector<int> classify(const IqTrace& trace) const;

  /// Allocation-free int8 path: raw trace -> fused int front-end -> int8
  /// heads, entirely inside `scratch`'s reused buffers. `out` must hold
  /// num_qubits() entries. Thread-safe for distinct scratches.
  void classify_into(const IqTrace& trace, InferenceScratch& scratch,
                     std::span<int> out) const;

  /// Batched classify over shots [lo, hi): feature codes gathered into a
  /// row-major tile, each int8 head swept weight-row-outer over the whole
  /// tile (Quantized8Mlp::classify_batch_into), labels scattered back
  /// through `labels_at(s)`. Integer arithmetic is exact, so labels are
  /// bit-identical to classify_into. Thread-safe for distinct scratches.
  void classify_batch_into(std::size_t lo, std::size_t hi,
                           const ShotFrameAt& frame_at,
                           InferenceScratch& scratch,
                           const ShotLabelsAt& labels_at) const;

  std::string name() const { return "OURS-INT8"; }

  std::size_t num_qubits() const { return heads_.size(); }
  std::size_t samples_used() const { return frontend_.n_samples(); }
  std::size_t feature_dim() const { return frontend_.n_filters(); }
  const QuantizedFrontend& frontend() const { return frontend_; }
  const Quantized8Mlp& head(std::size_t q) const { return heads_.at(q); }
  const QuantizationConfig& config() const { return cfg_; }

  /// Binary little-endian persistence of the complete int8 datapath
  /// (config, fused front-end tables, per-qubit int8 heads). A reloaded
  /// instance classifies bit-identically. Prefer pipeline/snapshot.h's
  /// save_backend / load_backend wrappers, which add the magic+version
  /// header.
  void save(std::ostream& os) const;
  static Quantized8ProposedDiscriminator load(std::istream& is);

 private:
  QuantizationConfig cfg_;
  QuantizedFrontend frontend_;
  std::vector<Quantized8Mlp> heads_;  ///< One int8 head per qubit.
};

}  // namespace mlqr
