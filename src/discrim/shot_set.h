// Labeled collections of multiplexed readout shots — the common currency
// between the dataset generator and every discriminator trainer.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/demodulator.h"
#include "sim/iq.h"

namespace mlqr {

/// A batch of multiplexed traces with per-qubit integer level labels.
/// Labels are stored flat, row-major (shot-major): label(s, q) =
/// labels[s * n_qubits + q].
struct ShotSet {
  std::vector<IqTrace> traces;
  std::vector<int> labels;
  std::size_t n_qubits = 0;

  std::size_t size() const { return traces.size(); }
  bool empty() const { return traces.empty(); }

  int label(std::size_t shot, std::size_t qubit) const;
  std::span<const int> shot_labels(std::size_t shot) const;

  /// Shape invariants; throws on violation.
  void validate() const;
};

/// Demodulates one qubit's baseband traces for a subset of shots (parallel
/// over shots). Trainers process qubits sequentially through this helper so
/// peak memory stays at one qubit's worth of baseband data.
/// `max_samples` = 0 keeps full traces (readout-duration sweeps truncate).
std::vector<BasebandTrace> demodulate_subset(const ShotSet& shots,
                                             std::span<const std::size_t> subset,
                                             const Demodulator& demod,
                                             std::size_t qubit,
                                             std::size_t max_samples);

}  // namespace mlqr
