// Joint-state label encoding for output-exponential designs.
//
// FNN and HERQULES classify the whole register at once: n qubits with k
// levels each map to a single class index in [0, k^n) — base-k digits,
// qubit 0 least significant. This file is deliberately tiny: the k^n blowup
// it encodes is the scalability wall the paper's modular design removes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace mlqr {

/// k^n as size_t; throws on overflow (n and k are small in practice).
std::size_t joint_class_count(std::size_t n_qubits, int n_levels);

/// Encodes per-qubit levels into a joint class index.
std::size_t encode_joint(std::span<const int> levels, int n_levels);

/// Decodes a joint class index into per-qubit levels.
std::vector<int> decode_joint(std::size_t joint, std::size_t n_qubits,
                              int n_levels);

/// Allocation-free decode into a caller-provided span of size n_qubits.
void decode_joint_into(std::size_t joint, int n_levels, std::span<int> out);

}  // namespace mlqr
