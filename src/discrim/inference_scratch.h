// Reusable per-worker scratch buffers for the allocation-free inference
// paths (the *_into methods on every discriminator).
//
// The per-shot classify() entry points allocate baseband traces, feature
// vectors and MLP activations on every call — fine for a table bench, a
// throughput killer for the streaming engine. Each engine worker owns one
// InferenceScratch; after the first shot of a batch every buffer has grown
// to its steady-state size and the hot loop performs zero heap allocations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/iq.h"

namespace mlqr {

/// Scratch space shared by every discriminator's classify_into path. A
/// single instance may be reused across *different* discriminators (the
/// buffers are sized on demand) but never across concurrent threads.
struct InferenceScratch {
  /// Per-qubit demodulated channels (proposed design) or a single reused
  /// channel buffer (per-qubit sequential designs).
  std::vector<BasebandTrace> baseband;
  /// Merged / raw feature vector handed to the classifier head.
  std::vector<float> features;
  /// One qubit's matched-filter scores before merging.
  std::vector<float> qubit_features;
  /// MLP activation ping-pong buffers (see Mlp::logits_into).
  std::vector<float> logits;
  std::vector<float> activations;

  /// Integer-path buffers (QuantizedProposedDiscriminator): the raw trace
  /// converted to fixed-point I/Q codes, the merged feature codes, the
  /// integer logit accumulators, and the int16 activation ping-pong pair
  /// (activation codes are <= 16 bits wide; the narrow type feeds the
  /// widening int16 SIMD dot products directly).
  std::vector<std::int16_t> int_trace_i;
  std::vector<std::int16_t> int_trace_q;
  std::vector<std::int32_t> int_features;
  std::vector<std::int64_t> int_logits;
  std::vector<std::int16_t> int_act_a;
  std::vector<std::int16_t> int_act_b;
};

}  // namespace mlqr
