// Reusable per-worker scratch buffers for the allocation-free inference
// paths (the *_into methods on every discriminator).
//
// The per-shot classify() entry points allocate baseband traces, feature
// vectors and MLP activations on every call — fine for a table bench, a
// throughput killer for the streaming engine. Each engine worker owns one
// InferenceScratch; after the first shot of a batch every buffer has grown
// to its steady-state size and the hot loop performs zero heap allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sim/iq.h"

namespace mlqr {

/// Accessors the batched classify paths use to reach shot `s`'s input
/// frame and per-qubit label slots without knowing the caller's container
/// (micro-batch spans, streaming ring slots — anything indexable). Defined
/// here rather than in the pipeline layer because the discriminators'
/// classify_batch_into methods take them directly.
using ShotFrameAt = std::function<const IqTrace&(std::size_t)>;
using ShotLabelsAt = std::function<std::span<int>(std::size_t)>;

/// Scratch space shared by every discriminator's classify_into path. A
/// single instance may be reused across *different* discriminators (the
/// buffers are sized on demand) but never across concurrent threads.
struct InferenceScratch {
  /// Per-qubit demodulated channels (proposed design) or a single reused
  /// channel buffer (per-qubit sequential designs).
  std::vector<BasebandTrace> baseband;
  /// Merged / raw feature vector handed to the classifier head.
  std::vector<float> features;
  /// One qubit's matched-filter scores before merging.
  std::vector<float> qubit_features;
  /// MLP activation ping-pong buffers (see Mlp::logits_into).
  std::vector<float> logits;
  std::vector<float> activations;

  /// Integer-path buffers (QuantizedProposedDiscriminator): the raw trace
  /// converted to fixed-point I/Q codes, the merged feature codes, the
  /// integer logit accumulators, and the int16 activation ping-pong pair
  /// (activation codes are <= 16 bits wide; the narrow type feeds the
  /// widening int16 SIMD dot products directly).
  std::vector<std::int16_t> int_trace_i;
  std::vector<std::int16_t> int_trace_q;
  std::vector<std::int32_t> int_features;
  std::vector<std::int64_t> int_logits;
  std::vector<std::int16_t> int_act_a;
  std::vector<std::int16_t> int_act_b;

  /// Int8-path per-shot buffers (Quantized8ProposedDiscriminator): biased
  /// uint8 activation ping-pong pair and int32 logit accumulators. Feature
  /// extraction reuses int_features.
  std::vector<std::uint8_t> u8_act_a;
  std::vector<std::uint8_t> u8_act_b;
  std::vector<std::int32_t> i32_logits;

  /// Batched-GEMM buffers (classify_batch_into): row-major tile matrices
  /// gathering per-shot feature vectors so the MLP stage runs as one GEMM
  /// (or weight-row-outer integer sweep) per layer instead of one GEMV per
  /// shot. Labels are staged in batch_labels (tile x n_qubits) and then
  /// scattered to the caller's slots, which need not be contiguous.
  std::vector<float> batch_features;      ///< tile x feat_dim (float path).
  std::vector<float> batch_act_a;         ///< GEMM activation ping-pong.
  std::vector<float> batch_act_b;
  std::vector<std::int32_t> batch_int_features;  ///< tile x feat_dim codes.
  std::vector<std::int16_t> batch_i16_act_a;     ///< int16 batch ping-pong.
  std::vector<std::int16_t> batch_i16_act_b;
  std::vector<std::int64_t> batch_i64_logits;    ///< int16-path logits.
  std::vector<std::uint8_t> batch_u8_act_a;      ///< int8 batch ping-pong.
  std::vector<std::uint8_t> batch_u8_act_b;
  std::vector<std::int32_t> batch_i32_logits;    ///< int8-path logits.
  std::vector<int> batch_labels;                 ///< tile x n_qubits stage.

  /// Blocked front-end staging (QuantizedFrontend::features_block_into):
  /// the quantized I/Q codes of one small shot block, kept L1-resident
  /// while the kernel code table streams across the block.
  std::vector<std::int16_t> block_trace_i;  ///< shot-block x n_samples.
  std::vector<std::int16_t> block_trace_q;
};

}  // namespace mlqr
