// Integer fixed-point twin of the proposed discriminator — the actual
// FPGA datapath end-to-end: fused int16 demod+matched-filter front-end
// (QuantizedFrontend) feeding one integer per-qubit head (QuantizedMlp)
// each. Exposes the same classify_into(trace, scratch, out) contract as
// the float designs, so make_backend plugs it straight into
// ReadoutEngine::process_batch; per-shot inference is pure, so labels are
// bit-identical across batch sizes and thread counts.
//
// Built by *calibrated* quantization of a trained float
// ProposedDiscriminator: fixed-point formats for the trace, features,
// kernels, weights and activations are fitted from training data
// (fit_format / saturating_format), not assumed — the resource model reads
// these calibrated widths via design_spec().
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/fixed_point.h"
#include "discrim/inference_scratch.h"
#include "discrim/proposed.h"
#include "discrim/shot_set.h"
#include "dsp/quantized_frontend.h"
#include "fpga/resource_model.h"
#include "nn/quantized_mlp.h"

namespace mlqr {

/// Summary of the calibrated fixed-point formats across the whole design —
/// what the FPGA resource model consumes instead of assumed widths.
struct CalibratedFormats {
  FixedPointFormat trace;    ///< ADC-side I/Q code grid.
  FixedPointFormat feature;  ///< Merged-feature / NN-input grid.
  int weight_bits = 0;       ///< Kernel + NN weight code width.
  int activation_bits = 0;   ///< Inter-layer activation code width.
  int accum_bits = 0;        ///< Saturating MAC accumulator width.
  /// Narrowest weight fraction actually calibrated across kernels and NN
  /// layers (the effective precision floor of the datapath).
  int min_weight_frac_bits = 0;
};

/// Trained-then-quantized instance of the proposed design.
class QuantizedProposedDiscriminator {
 public:
  /// Quantizes a trained float discriminator. `calib`/`calib_idx` supply
  /// the range-calibration shots (use the training split; capped at
  /// cfg.max_calibration_shots).
  static QuantizedProposedDiscriminator quantize(
      const ProposedDiscriminator& d, const ShotSet& calib,
      std::span<const std::size_t> calib_idx,
      const QuantizationConfig& cfg = {});

  /// Per-qubit level predictions for one multiplexed trace. Thread-safe.
  std::vector<int> classify(const IqTrace& trace) const;

  /// Allocation-free integer path: raw trace -> fused int front-end ->
  /// integer heads, entirely inside `scratch`'s reused buffers. `out` must
  /// hold num_qubits() entries. Thread-safe for distinct scratches.
  void classify_into(const IqTrace& trace, InferenceScratch& scratch,
                     std::span<int> out) const;

  /// Batched classify over shots [lo, hi): feature codes gathered into a
  /// row-major tile, each integer head swept weight-row-outer over the
  /// whole tile (QuantizedMlp::classify_batch_into), labels scattered back
  /// through `labels_at(s)`. Integer arithmetic is exact, so labels are
  /// bit-identical to classify_into. Thread-safe for distinct scratches.
  void classify_batch_into(std::size_t lo, std::size_t hi,
                           const ShotFrameAt& frame_at,
                           InferenceScratch& scratch,
                           const ShotLabelsAt& labels_at) const;

  std::string name() const {
    return "OURS-INT" + std::to_string(cfg_.weight_bits);
  }

  std::size_t num_qubits() const { return heads_.size(); }
  std::size_t samples_used() const { return frontend_.n_samples(); }
  std::size_t feature_dim() const { return frontend_.n_filters(); }
  const QuantizedFrontend& frontend() const { return frontend_; }
  const QuantizedMlp& head(std::size_t q) const { return heads_.at(q); }
  const QuantizationConfig& config() const { return cfg_; }

  CalibratedFormats calibrated_formats() const;

  /// DesignSpec of this exact instance — topology from the trained heads,
  /// HLS precision knobs from the calibrated formats (see
  /// hls_config_from_formats) rather than assumed deployment widths.
  DesignSpec design_spec() const;

  /// Binary little-endian persistence of the complete integer datapath
  /// (config, fused front-end tables, per-qubit integer heads). A reloaded
  /// instance classifies bit-identically. Prefer pipeline/snapshot.h's
  /// save_backend / load_backend wrappers, which add the magic+version
  /// header.
  void save(std::ostream& os) const;
  static QuantizedProposedDiscriminator load(std::istream& is);

 private:
  QuantizationConfig cfg_;
  QuantizedFrontend frontend_;
  std::vector<QuantizedMlp> heads_;  ///< One integer head per qubit.
};

}  // namespace mlqr
