#include "discrim/shot_set.h"

#include "common/error.h"
#include "common/parallel.h"

namespace mlqr {

int ShotSet::label(std::size_t shot, std::size_t qubit) const {
  MLQR_CHECK(shot < traces.size() && qubit < n_qubits);
  return labels[shot * n_qubits + qubit];
}

std::span<const int> ShotSet::shot_labels(std::size_t shot) const {
  MLQR_CHECK(shot < traces.size());
  return {labels.data() + shot * n_qubits, n_qubits};
}

void ShotSet::validate() const {
  MLQR_CHECK(n_qubits > 0);
  MLQR_CHECK_MSG(labels.size() == traces.size() * n_qubits,
                 "ShotSet labels size " << labels.size() << " != "
                                        << traces.size() << " shots x "
                                        << n_qubits << " qubits");
  for (const IqTrace& t : traces) t.check_consistent();
}

std::vector<BasebandTrace> demodulate_subset(const ShotSet& shots,
                                             std::span<const std::size_t> subset,
                                             const Demodulator& demod,
                                             std::size_t qubit,
                                             std::size_t max_samples) {
  std::vector<BasebandTrace> out(subset.size());
  parallel_for(0, subset.size(), [&](std::size_t i) {
    MLQR_CHECK(subset[i] < shots.size());
    out[i] = demod.demodulate(shots.traces[subset[i]], qubit, max_samples);
  });
  return out;
}

}  // namespace mlqr
