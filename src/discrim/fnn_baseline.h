// FNN baseline (Lienhard et al. [1], paper SSIV-B, Fig 2 top).
//
// A single large feed-forward network consumes the *raw* multiplexed ADC
// trace — 500 I + 500 Q samples, no demodulation — and emits one softmax
// over all k^n joint register states (243 for five qutrits). High capacity
// lets it learn crosstalk and error signatures directly, but the
// output-exponential head makes it ~100x larger than the proposed design
// and infeasible to deploy on an FPGA (Fig 1(d)).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "discrim/inference_scratch.h"
#include "discrim/shot_set.h"
#include "nn/mlp.h"
#include "nn/normalizer.h"
#include "nn/trainer.h"
#include "sim/chip_profile.h"

namespace mlqr {

struct FnnConfig {
  /// Hidden layer widths per the published design.
  std::vector<std::size_t> hidden{500, 250};
  static TrainerConfig default_trainer() {
    TrainerConfig t;
    t.epochs = 12;
    t.batch_size = 64;
    t.learning_rate = 1e-3f;
    t.seed = 41;
    return t;
  }
  TrainerConfig trainer = default_trainer();
  /// Levels per qubit: 3 for the paper's study; 2 reproduces the original
  /// two-level FNN (training then drops shots containing leaked qubits).
  int n_levels = 3;
  /// Readout duration (0 = full trace).
  double duration_ns = 0.0;
  /// Inverse-frequency weighting of the joint classes (capped). The paper
  /// trains on 1.6M traces where leakage-bearing joint classes have
  /// thousands of examples; at this repo's ~100x smaller dataset the same
  /// classes have a handful, so weighting compensates for scale (applied
  /// identically to HERQULES; see EXPERIMENTS.md).
  bool balance_classes = true;
  float class_weight_cap = 64.0f;
};

class FnnDiscriminator {
 public:
  static FnnDiscriminator train(const ShotSet& shots,
                                std::span<const int> labels_flat,
                                std::span<const std::size_t> train_idx,
                                const ChipProfile& chip, const FnnConfig& cfg);

  /// Per-qubit level predictions (argmax joint class, base-k decoded).
  std::vector<int> classify(const IqTrace& trace) const;

  /// Allocation-free classify (see InferenceScratch). `out` must hold one
  /// entry per qubit.
  void classify_into(const IqTrace& trace, InferenceScratch& scratch,
                     std::span<int> out) const;

  /// Batched classify over shots [lo, hi): raw I/Q feature rows gathered
  /// into a tile in `scratch`, the whole tile standardized in one
  /// normalizer pass (per-row affine, so identical to the per-shot path),
  /// the joint head run as one GEMM per layer (Mlp::classify_batch_into,
  /// bit-identical argmax), then each joint class base-k decoded into
  /// `labels_at(s)`. Recalibrated FNN shards serve at batched speed like
  /// the Proposed family. Thread-safe for distinct scratches.
  void classify_batch_into(std::size_t lo, std::size_t hi,
                           const ShotFrameAt& frame_at,
                           InferenceScratch& scratch,
                           const ShotLabelsAt& labels_at) const;

  /// classify_into plus the softmax confidence of the winning joint class,
  /// in (0, 1]. Labels are bit-identical to classify_into — the score is a
  /// drift-monitoring side channel, not an alternative decision rule.
  float classify_scored_into(const IqTrace& trace, InferenceScratch& scratch,
                             std::span<int> out) const;

  std::string name() const { return "FNN"; }

  std::size_t num_qubits() const { return n_qubits_; }
  std::size_t samples_used() const { return samples_used_; }
  std::size_t parameter_count() const { return model_.parameter_count(); }
  const Mlp& model() const { return model_; }
  std::size_t input_dim() const { return model_.input_size(); }

  /// Binary little-endian persistence of the inference state (level count,
  /// dims, normalizer, network) — the FNN's calibration snapshot payload.
  /// Training-only config does not travel. load throws mlqr::Error on any
  /// corrupt or inconsistent stream.
  void save(std::ostream& os) const;
  static FnnDiscriminator load(std::istream& is);

 private:
  /// Raw-trace feature vector: [I(0..n-1), Q(0..n-1)].
  std::vector<float> raw_features(const IqTrace& trace) const;

  /// Same layout written into a reused buffer — the single source of truth
  /// shared by training and the scratch inference path.
  void raw_features_into(const IqTrace& trace, std::vector<float>& x) const;

  FnnConfig cfg_;
  std::size_t n_qubits_ = 0;
  std::size_t samples_used_ = 0;
  FeatureNormalizer normalizer_;
  Mlp model_;
};

}  // namespace mlqr
