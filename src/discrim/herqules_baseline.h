// HERQULES baseline (Maurya et al., ISCA'23; paper SSIV-B, Fig 2 bottom).
//
// Demodulated traces pass through per-qubit matched filters — qubit-state
// and relaxation filters only (no excitation filters) — and a single joint
// NN classifies the whole register: input 2n features at two levels, 6n at
// three, output k^n. Excellent for two-level readout, but at k=3 the
// 243-way joint head must be trained from data where most leakage-bearing
// joint classes have few or zero examples, and the shared softmax drags
// every qubit's marginal down — the collapse in the paper's Table II.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "discrim/inference_scratch.h"
#include "discrim/shot_set.h"
#include "dsp/demodulator.h"
#include "mf/mf_bank.h"
#include "nn/mlp.h"
#include "nn/normalizer.h"
#include "nn/trainer.h"
#include "sim/chip_profile.h"

namespace mlqr {

struct HerqulesConfig {
  static TrainerConfig default_trainer() {
    TrainerConfig t;
    t.epochs = 30;
    t.batch_size = 64;
    t.learning_rate = 1e-3f;
    t.seed = 53;
    return t;
  }
  TrainerConfig trainer = default_trainer();
  /// Hidden widths of the joint head (published design uses a compact
  /// pyramid; 30 -> 60 -> 120 -> 243 at three levels).
  std::vector<std::size_t> hidden{60, 120};
  int n_levels = 3;
  double duration_ns = 0.0;
  /// Minimum mined traces for a dedicated relaxation kernel.
  std::size_t min_error_traces = 8;
  /// Capped inverse-frequency joint-class weighting (same scale
  /// compensation as FnnConfig::balance_classes).
  bool balance_classes = true;
  float class_weight_cap = 64.0f;
};

class HerqulesDiscriminator {
 public:
  static HerqulesDiscriminator train(const ShotSet& shots,
                                     std::span<const int> labels_flat,
                                     std::span<const std::size_t> train_idx,
                                     const ChipProfile& chip,
                                     const HerqulesConfig& cfg);

  std::vector<int> classify(const IqTrace& trace) const;

  /// Allocation-free classify (see InferenceScratch). `out` must hold one
  /// entry per qubit.
  void classify_into(const IqTrace& trace, InferenceScratch& scratch,
                     std::span<int> out) const;

  std::string name() const { return "HERQULES"; }

  std::size_t num_qubits() const { return n_qubits_; }
  std::size_t samples_used() const { return samples_used_; }
  std::size_t parameter_count() const { return model_.parameter_count(); }
  const Mlp& model() const { return model_; }
  const ChipMfBank& mf_bank() const { return bank_; }

  /// Binary little-endian persistence of the inference state (level count,
  /// dims, demodulator, filter bank, normalizer, joint head) — the
  /// HERQULES calibration snapshot payload. load throws mlqr::Error on any
  /// corrupt or cross-component-inconsistent stream.
  void save(std::ostream& os) const;
  static HerqulesDiscriminator load(std::istream& is);

 private:
  HerqulesConfig cfg_;
  std::size_t n_qubits_ = 0;
  std::size_t samples_used_ = 0;
  Demodulator demod_;
  ChipMfBank bank_;
  FeatureNormalizer normalizer_;
  Mlp model_;
};

}  // namespace mlqr
