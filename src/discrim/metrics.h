// Readout fidelity metrics (paper Tables II/IV/V conventions).
//
// Per-qubit fidelity is the macro-average over the qubit's k levels of
// P(assigned == l | true == l): with natural leakage the |2> level is rare
// in the test set, so a plain (micro) accuracy would reward classifiers
// that never predict |2> — macro-averaging is what exposes the HERQULES
// collapse the paper reports. F5Q is the geometric mean across qubits.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "discrim/shot_set.h"
#include "sim/chip_profile.h"

namespace mlqr {

/// k x k confusion counts for one qubit (rows = true level, cols = assigned).
struct QubitConfusion {
  std::array<std::array<std::size_t, kNumLevels>, kNumLevels> counts{};

  void add(int true_level, int assigned);
  std::size_t total() const;
  std::size_t row_total(int true_level) const;

  /// P(assigned == l | true == l); returns 1 for levels absent in the data
  /// (they contribute no evidence either way).
  double per_level_accuracy(int level) const;

  /// Macro-average over levels present in the data.
  double macro_fidelity() const;

  /// Plain assignment accuracy.
  double micro_fidelity() const;
};

/// Whole-register evaluation result.
struct FidelityReport {
  std::vector<QubitConfusion> per_qubit;

  double qubit_fidelity(std::size_t q) const;  ///< Macro, per the paper.

  /// Geometric mean of per-qubit fidelities: F5Q = (prod F_q)^(1/n).
  double geometric_mean_fidelity() const;

  /// Mean fidelity excluding the given qubits (Table VI excludes qubit 2
  /// "due to experimental limitations during its setup").
  double mean_fidelity_excluding(std::span<const std::size_t> excluded) const;

  /// 1 - mean_fidelity_excluding — the paper's "Error(%)" column.
  double readout_error_excluding(std::span<const std::size_t> excluded) const;
};

/// Classifier adapter: anything mapping a multiplexed trace to per-qubit
/// levels can be scored (used for every design, NN-based or Gaussian).
using ShotClassifier = std::function<std::vector<int>(const IqTrace&)>;

/// Scores `classify` on the chosen shots against ground-truth labels,
/// parallel over shots. `classify` must be thread-safe (pure).
FidelityReport evaluate_classifier(const ShotClassifier& classify,
                                   const ShotSet& shots,
                                   std::span<const std::size_t> subset);

}  // namespace mlqr
