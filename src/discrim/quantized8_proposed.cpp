#include "discrim/quantized8_proposed.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"

namespace mlqr {

Quantized8ProposedDiscriminator Quantized8ProposedDiscriminator::quantize(
    const ProposedDiscriminator& d, const ShotSet& calib,
    std::span<const std::size_t> calib_idx, const QuantizationConfig& cfg) {
  // Run the int16 twin's calibration at the narrow widths — identical
  // range sweep, identical code minting — then narrow the heads' storage.
  // The front-end carries over unchanged: its kernel and trace grids are
  // calibrated independently of the head width.
  const QuantizedProposedDiscriminator q16 =
      QuantizedProposedDiscriminator::quantize(d, calib, calib_idx, cfg);
  Quantized8ProposedDiscriminator q;
  q.cfg_ = cfg;
  q.frontend_ = q16.frontend();
  q.heads_.reserve(q16.num_qubits());
  for (std::size_t qubit = 0; qubit < q16.num_qubits(); ++qubit)
    q.heads_.push_back(Quantized8Mlp::from_quantized(q16.head(qubit)));
  return q;
}

std::vector<int> Quantized8ProposedDiscriminator::classify(
    const IqTrace& trace) const {
  InferenceScratch scratch;
  std::vector<int> out(heads_.size());
  classify_into(trace, scratch, out);
  return out;
}

void Quantized8ProposedDiscriminator::classify_into(
    const IqTrace& trace, InferenceScratch& scratch, std::span<int> out) const {
  MLQR_CHECK(out.size() == heads_.size());
  frontend_.features_into(trace, scratch);
  for (std::size_t q = 0; q < heads_.size(); ++q)
    out[q] = heads_[q].predict(scratch.int_features, scratch.i32_logits,
                               scratch.u8_act_a, scratch.u8_act_b);
}

void Quantized8ProposedDiscriminator::classify_batch_into(
    std::size_t lo, std::size_t hi, const ShotFrameAt& frame_at,
    InferenceScratch& scratch, const ShotLabelsAt& labels_at) const {
  const std::size_t n_qubits = heads_.size();
  const std::size_t feat_dim = frontend_.n_filters();
  constexpr std::size_t kBatchTile = 128;
  for (std::size_t base = lo; base < hi; base += kBatchTile) {
    const std::size_t tile = std::min(kBatchTile, hi - base);
    scratch.batch_int_features.resize(tile * feat_dim);
    const IqTrace* frames[kBatchTile];
    for (std::size_t s = 0; s < tile; ++s) frames[s] = &frame_at(base + s);
    frontend_.features_block_into(tile, frames, scratch,
                                  scratch.batch_int_features.data(), feat_dim);
    scratch.batch_labels.resize(tile * n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q)
      heads_[q].classify_batch_into(
          tile, scratch.batch_int_features.data(), scratch.batch_u8_act_a,
          scratch.batch_u8_act_b, scratch.batch_i32_logits,
          scratch.batch_labels.data() + q, n_qubits);
    for (std::size_t s = 0; s < tile; ++s) {
      const std::span<int> out = labels_at(base + s);
      MLQR_CHECK(out.size() == n_qubits);
      std::copy_n(scratch.batch_labels.data() + s * n_qubits, n_qubits,
                  out.begin());
    }
  }
}

void Quantized8ProposedDiscriminator::save(std::ostream& os) const {
  MLQR_CHECK_MSG(!heads_.empty(), "cannot save an uncalibrated discriminator");
  save_quantization_config(os, cfg_);
  frontend_.save(os);
  io::write_u64(os, heads_.size());
  for (const Quantized8Mlp& h : heads_) h.save(os);
}

Quantized8ProposedDiscriminator Quantized8ProposedDiscriminator::load(
    std::istream& is) {
  Quantized8ProposedDiscriminator q;
  q.cfg_ = load_quantization_config(is);
  q.frontend_ = QuantizedFrontend::load(is);
  const std::size_t n_heads = io::read_count(is, 4096);
  q.heads_.reserve(n_heads);
  for (std::size_t h = 0; h < n_heads; ++h)
    q.heads_.push_back(Quantized8Mlp::load(is));

  MLQR_CHECK_MSG(n_heads == q.frontend_.num_qubits(),
                 "snapshot has " << n_heads << " int8 heads for "
                                 << q.frontend_.num_qubits() << " qubits");
  for (const Quantized8Mlp& h : q.heads_) {
    MLQR_CHECK_MSG(h.input_size() == q.frontend_.n_filters(),
                   "snapshot int8 head reads " << h.input_size()
                       << " features, front-end emits "
                       << q.frontend_.n_filters());
    MLQR_CHECK_MSG(h.output_size() == static_cast<std::size_t>(kNumLevels),
                   "snapshot int8 head emits " << h.output_size()
                                               << " levels");
    // The front-end writes feature codes on feature_format(); the first
    // layer must consume exactly that grid or the requant chain shifts by
    // the wrong amount — a silent misclassification, so check it hard.
    const FixedPointFormat& in = h.layers().front().in_fmt;
    MLQR_CHECK_MSG(in.total_bits == q.frontend_.feature_format().total_bits &&
                       in.frac_bits == q.frontend_.feature_format().frac_bits,
                   "snapshot head input grid <" << in.total_bits << ','
                       << in.frac_bits << "> != front-end feature grid <"
                       << q.frontend_.feature_format().total_bits << ','
                       << q.frontend_.feature_format().frac_bits << '>');
  }
  return q;
}

}  // namespace mlqr
