#include "discrim/gaussian_discriminator.h"

#include "common/error.h"
#include "common/serialize.h"
#include "discrim/iq_features.h"

namespace mlqr {

namespace {

std::vector<double> extract(const BasebandTrace& trace, bool split_window) {
  return split_window ? split_window_features(trace) : mtv_features(trace);
}

}  // namespace

GaussianShotDiscriminator GaussianShotDiscriminator::train(
    const ShotSet& shots, std::span<const int> labels_flat,
    std::span<const std::size_t> train_idx, const ChipProfile& chip,
    const GaussianDiscriminatorConfig& cfg) {
  shots.validate();
  MLQR_CHECK(labels_flat.size() == shots.size() * shots.n_qubits);
  MLQR_CHECK(!train_idx.empty());

  GaussianShotDiscriminator d;
  d.cfg_ = cfg;
  d.demod_ = Demodulator(chip);
  d.samples_used_ = chip.window_samples(cfg.duration_ns);

  const std::size_t feat_dim = cfg.split_window ? 4 : 2;
  for (std::size_t q = 0; q < shots.n_qubits; ++q) {
    const std::vector<BasebandTrace> baseband =
        demodulate_subset(shots, train_idx, d.demod_, q, d.samples_used_);
    std::vector<double> features;
    features.reserve(train_idx.size() * feat_dim);
    std::vector<int> labels;
    labels.reserve(train_idx.size());
    for (std::size_t i = 0; i < train_idx.size(); ++i) {
      const std::vector<double> f = extract(baseband[i], cfg.split_window);
      features.insert(features.end(), f.begin(), f.end());
      labels.push_back(labels_flat[train_idx[i] * shots.n_qubits + q]);
    }
    d.per_qubit_.push_back(GaussianClassifier::fit(
        features, feat_dim, labels, kNumLevels, cfg.kind, cfg.jitter));
  }
  return d;
}

std::vector<int> GaussianShotDiscriminator::classify(
    const IqTrace& trace) const {
  InferenceScratch scratch;
  std::vector<int> out(per_qubit_.size());
  classify_into(trace, scratch, out);
  return out;
}

void GaussianShotDiscriminator::classify_into(const IqTrace& trace,
                                              InferenceScratch& scratch,
                                              std::span<int> out) const {
  MLQR_CHECK(out.size() == per_qubit_.size());
  if (scratch.baseband.empty()) scratch.baseband.resize(1);
  BasebandTrace& baseband = scratch.baseband.front();
  for (std::size_t q = 0; q < per_qubit_.size(); ++q) {
    demod_.demodulate_into(trace, q, samples_used_, baseband);
    out[q] = per_qubit_[q].predict(extract(baseband, cfg_.split_window));
  }
}

std::string GaussianShotDiscriminator::name() const {
  return cfg_.kind == GaussianKind::kLda ? "LDA" : "QDA";
}

void GaussianShotDiscriminator::save(std::ostream& os) const {
  io::write_u8(os, cfg_.kind == GaussianKind::kQda ? 1 : 0);
  io::write_bool(os, cfg_.split_window);
  io::write_u64(os, samples_used_);
  demod_.save(os);
  io::write_u64(os, per_qubit_.size());
  for (const GaussianClassifier& g : per_qubit_) g.save(os);
}

GaussianShotDiscriminator GaussianShotDiscriminator::load(std::istream& is) {
  GaussianShotDiscriminator d;
  const std::uint8_t kind = io::read_u8(is);
  MLQR_CHECK_MSG(kind <= 1, "corrupt Gaussian discriminator kind "
                                << static_cast<int>(kind));
  d.cfg_.kind = kind == 1 ? GaussianKind::kQda : GaussianKind::kLda;
  d.cfg_.split_window = io::read_bool(is);
  d.samples_used_ = io::read_count(is);
  MLQR_CHECK_MSG(d.samples_used_ > 0, "corrupt Gaussian discriminator window");
  d.demod_ = Demodulator::load(is);
  const std::size_t n_qubits = io::read_count(is, 4096);
  MLQR_CHECK_MSG(n_qubits > 0 && n_qubits == d.demod_.num_qubits(),
                 "Gaussian discriminator qubit counts disagree (payload "
                     << n_qubits << ", demod " << d.demod_.num_qubits()
                     << ')');
  const std::size_t feat_dim = d.cfg_.split_window ? 4 : 2;
  d.per_qubit_.reserve(n_qubits);
  for (std::size_t q = 0; q < n_qubits; ++q) {
    GaussianClassifier g = GaussianClassifier::load(is);
    // Every per-qubit classifier must share the discriminator's kind and
    // consume exactly the feature layout classify_into extracts.
    MLQR_CHECK_MSG(g.kind() == d.cfg_.kind && g.dim() == feat_dim,
                   "Gaussian discriminator classifier " << q
                       << " does not match the discriminator's kind/layout");
    d.per_qubit_.push_back(std::move(g));
  }
  return d;
}

}  // namespace mlqr
