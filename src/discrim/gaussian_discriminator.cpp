#include "discrim/gaussian_discriminator.h"

#include "common/error.h"
#include "discrim/iq_features.h"

namespace mlqr {

namespace {

std::vector<double> extract(const BasebandTrace& trace, bool split_window) {
  return split_window ? split_window_features(trace) : mtv_features(trace);
}

}  // namespace

GaussianShotDiscriminator GaussianShotDiscriminator::train(
    const ShotSet& shots, std::span<const int> labels_flat,
    std::span<const std::size_t> train_idx, const ChipProfile& chip,
    const GaussianDiscriminatorConfig& cfg) {
  shots.validate();
  MLQR_CHECK(labels_flat.size() == shots.size() * shots.n_qubits);
  MLQR_CHECK(!train_idx.empty());

  GaussianShotDiscriminator d;
  d.cfg_ = cfg;
  d.demod_ = Demodulator(chip);
  d.samples_used_ = chip.window_samples(cfg.duration_ns);

  const std::size_t feat_dim = cfg.split_window ? 4 : 2;
  for (std::size_t q = 0; q < shots.n_qubits; ++q) {
    const std::vector<BasebandTrace> baseband =
        demodulate_subset(shots, train_idx, d.demod_, q, d.samples_used_);
    std::vector<double> features;
    features.reserve(train_idx.size() * feat_dim);
    std::vector<int> labels;
    labels.reserve(train_idx.size());
    for (std::size_t i = 0; i < train_idx.size(); ++i) {
      const std::vector<double> f = extract(baseband[i], cfg.split_window);
      features.insert(features.end(), f.begin(), f.end());
      labels.push_back(labels_flat[train_idx[i] * shots.n_qubits + q]);
    }
    d.per_qubit_.push_back(GaussianClassifier::fit(
        features, feat_dim, labels, kNumLevels, cfg.kind, cfg.jitter));
  }
  return d;
}

std::vector<int> GaussianShotDiscriminator::classify(
    const IqTrace& trace) const {
  InferenceScratch scratch;
  std::vector<int> out(per_qubit_.size());
  classify_into(trace, scratch, out);
  return out;
}

void GaussianShotDiscriminator::classify_into(const IqTrace& trace,
                                              InferenceScratch& scratch,
                                              std::span<int> out) const {
  MLQR_CHECK(out.size() == per_qubit_.size());
  if (scratch.baseband.empty()) scratch.baseband.resize(1);
  BasebandTrace& baseband = scratch.baseband.front();
  for (std::size_t q = 0; q < per_qubit_.size(); ++q) {
    demod_.demodulate_into(trace, q, samples_used_, baseband);
    out[q] = per_qubit_[q].predict(extract(baseband, cfg_.split_window));
  }
}

std::string GaussianShotDiscriminator::name() const {
  return cfg_.kind == GaussianKind::kLda ? "LDA" : "QDA";
}

}  // namespace mlqr
