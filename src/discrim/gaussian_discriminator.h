// Per-qubit LDA/QDA readout discriminators (paper Table V baselines).
//
// Each qubit gets an independent Gaussian classifier over its MTV point;
// classification of a shot runs every qubit's classifier on its own
// demodulated channel. Fast, tiny, but blind to trace-shape information
// (relaxation/excitation patterns) and to crosstalk — which is precisely
// the gap the paper's matched-filter + modular-NN design closes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "discrim/gaussian.h"
#include "discrim/inference_scratch.h"
#include "discrim/shot_set.h"
#include "dsp/demodulator.h"
#include "sim/chip_profile.h"

namespace mlqr {

struct GaussianDiscriminatorConfig {
  GaussianKind kind = GaussianKind::kLda;
  /// 0 = full trace; otherwise truncate to this readout duration.
  double duration_ns = 0.0;
  /// Use the 4-D early/late features instead of the 2-D MTV.
  bool split_window = false;
  double jitter = 1e-9;
};

/// Whole-register discriminator built from per-qubit Gaussian classifiers.
class GaussianShotDiscriminator {
 public:
  /// Trains per-qubit classifiers on the selected shots using
  /// `labels_flat` (shot-major, n_qubits stride — typically the
  /// clustering-estimated labels).
  static GaussianShotDiscriminator train(const ShotSet& shots,
                                         std::span<const int> labels_flat,
                                         std::span<const std::size_t> train_idx,
                                         const ChipProfile& chip,
                                         const GaussianDiscriminatorConfig& cfg);

  /// Per-qubit level predictions for one multiplexed trace. Thread-safe.
  std::vector<int> classify(const IqTrace& trace) const;

  /// Classify reusing the scratch's baseband buffer (the per-shot heap
  /// traffic that matters; the 2-4-dim MTV features stay on the stack-ish
  /// small-vector path). `out` must hold one entry per qubit.
  void classify_into(const IqTrace& trace, InferenceScratch& scratch,
                     std::span<int> out) const;

  std::string name() const;
  std::size_t num_qubits() const { return per_qubit_.size(); }
  std::size_t samples_used() const { return samples_used_; }

  /// Binary little-endian persistence of the inference state (kind,
  /// window, demodulator, per-qubit classifiers) — the LDA/QDA calibration
  /// snapshot payload. load throws mlqr::Error on any corrupt or
  /// kind-inconsistent stream.
  void save(std::ostream& os) const;
  static GaussianShotDiscriminator load(std::istream& is);

 private:
  GaussianDiscriminatorConfig cfg_;
  Demodulator demod_;
  std::size_t samples_used_ = 0;
  std::vector<GaussianClassifier> per_qubit_;
};

}  // namespace mlqr
