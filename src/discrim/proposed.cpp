#include "discrim/proposed.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/serialize.h"

namespace mlqr {

ProposedDiscriminator ProposedDiscriminator::train(
    const ShotSet& shots, std::span<const int> labels_flat,
    std::span<const std::size_t> train_idx, const ChipProfile& chip,
    const ProposedConfig& cfg) {
  shots.validate();
  MLQR_CHECK(labels_flat.size() == shots.size() * shots.n_qubits);
  MLQR_CHECK(!train_idx.empty());
  MLQR_CHECK(shots.n_qubits == chip.num_qubits());

  ProposedDiscriminator d;
  d.cfg_ = cfg;
  d.demod_ = Demodulator(chip);
  d.samples_used_ = chip.window_samples(cfg.duration_ns);

  const std::size_t n_qubits = shots.n_qubits;
  const std::size_t per_q = cfg.mf.filters_per_qubit();
  MLQR_CHECK_MSG(per_q > 0, "at least one filter group must be enabled");
  const std::size_t feat_dim = per_q * n_qubits;
  const std::size_t n_train = train_idx.size();

  // Train banks and fill the feature matrix qubit-by-qubit: qubit q's bank
  // only needs qubit q's baseband traces, so peak memory is one channel.
  // NN training features are *cross-fitted* (kernels from the other fold)
  // so rare-|2> kernel overfit cannot leak into the classifier thresholds;
  // inference uses the bank trained on all data.
  std::vector<float> features(n_train * feat_dim, 0.0f);
  std::vector<float> full_features(n_train * feat_dim, 0.0f);
  std::vector<std::vector<int>> labels_per_qubit(n_qubits);
  std::vector<QubitMfBank> banks;
  banks.reserve(n_qubits);
  std::vector<float> scratch;
  for (std::size_t q = 0; q < n_qubits; ++q) {
    const std::vector<BasebandTrace> baseband =
        demodulate_subset(shots, train_idx, d.demod_, q, d.samples_used_);
    std::vector<int>& labels = labels_per_qubit[q];
    labels.reserve(n_train);
    for (std::size_t i = 0; i < n_train; ++i)
      labels.push_back(labels_flat[train_idx[i] * n_qubits + q]);

    banks.push_back(
        QubitMfBank::train(baseband, labels, d.samples_used_, cfg.mf));

    const std::vector<float> xfit =
        cross_fit_features(baseband, labels, d.samples_used_, cfg.mf);
    for (std::size_t i = 0; i < n_train; ++i) {
      std::copy(xfit.begin() + i * per_q, xfit.begin() + (i + 1) * per_q,
                features.begin() + i * feat_dim + q * per_q);
      scratch.clear();
      banks.back().features(baseband[i], scratch);
      std::copy(scratch.begin(), scratch.end(),
                full_features.begin() + i * feat_dim + q * per_q);
    }
  }
  d.bank_.adopt(cfg.mf, std::move(banks));

  // Two normalizers: the NN trains on cross-fitted features standardized
  // by their own statistics; inference standardizes the full-bank features
  // by *theirs*. Z-scoring each version separately absorbs the affine
  // calibration drift between fold banks and the full bank (noticeable for
  // kernels fit on a handful of mined |2> traces).
  FeatureNormalizer train_norm = FeatureNormalizer::fit(features, feat_dim);
  train_norm.apply(features);
  d.normalizer_ = FeatureNormalizer::fit(full_features, feat_dim);

  // One small head per qubit, every head reading the merged features.
  std::vector<std::size_t> sizes{feat_dim};
  if (cfg.hidden.empty()) {
    sizes.push_back(std::max<std::size_t>(feat_dim / 2, 4));
    sizes.push_back(std::max<std::size_t>(feat_dim / 4, 4));
  } else {
    sizes.insert(sizes.end(), cfg.hidden.begin(), cfg.hidden.end());
  }
  sizes.push_back(static_cast<std::size_t>(kNumLevels));

  Rng init_rng(cfg.trainer.seed);
  for (std::size_t q = 0; q < n_qubits; ++q) {
    Mlp model(sizes);
    model.init_weights(init_rng);
    TrainerConfig tcfg = cfg.trainer;
    tcfg.seed = cfg.trainer.seed + 1000 * (q + 1);
    if (cfg.balance_classes)
      tcfg.class_weights =
          inverse_frequency_weights(labels_per_qubit[q], kNumLevels);
    train_classifier(model, features, labels_per_qubit[q], tcfg);
    d.models_.push_back(std::move(model));
  }

  // The inference front-end: every kernel pre-rotated by its qubit's LO so
  // classify_into touches the raw trace exactly once.
  d.fused_ =
      FusedFrontend::build(d.demod_, d.bank_, d.normalizer_, d.samples_used_);
  return d;
}

void ProposedDiscriminator::save(std::ostream& os) const {
  MLQR_CHECK_MSG(!models_.empty(), "cannot save an untrained discriminator");
  io::write_u64(os, samples_used_);
  demod_.save(os);
  bank_.save(os);
  normalizer_.save(os);
  fused_.save(os);
  io::write_u64(os, models_.size());
  for (const Mlp& m : models_) m.save(os);
}

ProposedDiscriminator ProposedDiscriminator::load(std::istream& is) {
  ProposedDiscriminator d;
  d.samples_used_ = io::read_count(is);
  MLQR_CHECK_MSG(d.samples_used_ > 0, "corrupt discriminator: zero samples");
  d.demod_ = Demodulator::load(is);
  d.bank_ = ChipMfBank::load(is);
  d.normalizer_ = FeatureNormalizer::load(is);
  d.fused_ = FusedFrontend::load(is);
  const std::size_t n_models = io::read_count(is, 4096);
  d.models_.reserve(n_models);
  for (std::size_t q = 0; q < n_models; ++q)
    d.models_.push_back(Mlp::load(is));

  // Cross-component consistency: the same checks train() guarantees by
  // construction become hard load-time errors on a mismatched stream.
  const std::size_t n_qubits = d.bank_.num_qubits();
  const std::size_t feat_dim = d.bank_.total_features();
  MLQR_CHECK_MSG(n_models == n_qubits, "snapshot has " << n_models
                     << " heads for " << n_qubits << " qubits");
  MLQR_CHECK_MSG(d.demod_.num_qubits() == n_qubits,
                 "snapshot demodulator has " << d.demod_.num_qubits()
                     << " channels for " << n_qubits << " qubits");
  MLQR_CHECK_MSG(d.normalizer_.dim() == feat_dim,
                 "snapshot normalizer dim " << d.normalizer_.dim()
                     << " != feature dim " << feat_dim);
  MLQR_CHECK_MSG(d.fused_.n_filters() == feat_dim &&
                     d.fused_.n_samples() == d.samples_used_ &&
                     d.fused_.num_qubits() == n_qubits,
                 "snapshot fused front-end does not match the bank ("
                     << d.fused_.n_filters() << " filters, "
                     << d.fused_.n_samples() << " samples)");
  for (const Mlp& m : d.models_) {
    MLQR_CHECK_MSG(m.input_size() == feat_dim,
                   "snapshot head reads " << m.input_size()
                       << " features, front-end emits " << feat_dim);
    MLQR_CHECK_MSG(m.output_size() == static_cast<std::size_t>(kNumLevels),
                   "snapshot head emits " << m.output_size() << " levels");
  }
  for (std::size_t q = 0; q < n_qubits; ++q)
    MLQR_CHECK_MSG(d.bank_.bank(q).filter(0).length() == d.samples_used_,
                   "snapshot kernels cover "
                       << d.bank_.bank(q).filter(0).length()
                       << " samples, window is " << d.samples_used_);
  d.cfg_.mf = d.bank_.config();
  return d;
}

std::size_t ProposedDiscriminator::feature_dim() const {
  return bank_.total_features();
}

std::size_t ProposedDiscriminator::parameter_count() const {
  std::size_t n = 0;
  for (const Mlp& m : models_) n += m.parameter_count();
  return n;
}

std::vector<float> ProposedDiscriminator::features(
    const IqTrace& trace) const {
  InferenceScratch scratch;
  features_into(trace, scratch);
  return std::move(scratch.features);
}

void ProposedDiscriminator::features_into(const IqTrace& trace,
                                          InferenceScratch& scratch) const {
  fused_.features_into(trace, scratch);
}

void ProposedDiscriminator::features_into_reference(
    const IqTrace& trace, InferenceScratch& scratch) const {
  scratch.baseband.resize(num_qubits());
  for (std::size_t q = 0; q < num_qubits(); ++q)
    demod_.demodulate_into(trace, q, samples_used_, scratch.baseband[q]);
  scratch.features.clear();
  bank_.features(scratch.baseband, scratch.features);
  normalizer_.apply(scratch.features);
}

std::vector<int> ProposedDiscriminator::classify(const IqTrace& trace) const {
  InferenceScratch scratch;
  std::vector<int> out(models_.size());
  classify_into(trace, scratch, out);
  return out;
}

void ProposedDiscriminator::classify_into(const IqTrace& trace,
                                          InferenceScratch& scratch,
                                          std::span<int> out) const {
  MLQR_CHECK(out.size() == models_.size());
  features_into(trace, scratch);
  for (std::size_t q = 0; q < models_.size(); ++q)
    out[q] = models_[q].predict_reusing(scratch.features, scratch.logits,
                                        scratch.activations);
}

float ProposedDiscriminator::classify_scored_into(const IqTrace& trace,
                                                  InferenceScratch& scratch,
                                                  std::span<int> out) const {
  MLQR_CHECK(out.size() == models_.size());
  features_into(trace, scratch);
  float total = 0.0f;
  for (std::size_t q = 0; q < models_.size(); ++q) {
    float p_max = 0.0f;
    out[q] = models_[q].predict_scored_reusing(scratch.features, scratch.logits,
                                               scratch.activations, p_max);
    total += p_max;
  }
  return total / static_cast<float>(models_.size());
}

void ProposedDiscriminator::classify_batch_into(
    std::size_t lo, std::size_t hi, const ShotFrameAt& frame_at,
    InferenceScratch& scratch, const ShotLabelsAt& labels_at) const {
  const std::size_t n_qubits = models_.size();
  const std::size_t feat_dim = feature_dim();
  // Tile so the activation matrices stay cache-resident: 128 rows of 45
  // features is ~23 KiB, comfortably inside L2 next to the weights.
  constexpr std::size_t kBatchTile = 128;
  for (std::size_t base = lo; base < hi; base += kBatchTile) {
    const std::size_t tile = std::min(kBatchTile, hi - base);
    scratch.batch_features.resize(tile * feat_dim);
    const IqTrace* frames[kBatchTile];
    for (std::size_t s = 0; s < tile; ++s) frames[s] = &frame_at(base + s);
    fused_.features_block_into(tile, frames, scratch.batch_features.data(),
                               feat_dim);
    scratch.batch_labels.resize(tile * n_qubits);
    for (std::size_t q = 0; q < n_qubits; ++q)
      models_[q].classify_batch_into(tile, scratch.batch_features.data(),
                                     scratch.batch_act_a, scratch.batch_act_b,
                                     scratch.batch_labels.data() + q,
                                     n_qubits);
    for (std::size_t s = 0; s < tile; ++s) {
      const std::span<int> out = labels_at(base + s);
      MLQR_CHECK(out.size() == n_qubits);
      std::copy_n(scratch.batch_labels.data() + s * n_qubits, n_qubits,
                  out.begin());
    }
  }
}

}  // namespace mlqr
