#include "mf/error_miner.h"

#include <cmath>

#include "common/error.h"
#include "dsp/filters.h"

namespace mlqr {

MinedErrorTraces mine_error_traces(std::span<const BasebandTrace> traces,
                                   std::span<const int> labels,
                                   const ErrorMinerConfig& cfg) {
  MLQR_CHECK(traces.size() == labels.size());
  MLQR_CHECK(!traces.empty());
  MLQR_CHECK(cfg.early_fraction > 0.0 && cfg.late_fraction > 0.0 &&
             cfg.early_fraction + cfg.late_fraction <= 1.0);

  const std::size_t n_samples = traces[0].size();
  const std::size_t early_end = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.early_fraction * n_samples));
  const std::size_t late_begin = n_samples - std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.late_fraction * n_samples));

  // Steady-state centroids per level from the *late* window of each class;
  // the late window is past the resonator ring-up, so non-error traces sit
  // at their state's steady response there. These serve as the "priors for
  // cluster identification" of the paper.
  std::array<Complexd, kNumLevels> centroid{};
  std::array<std::size_t, kNumLevels> count{};
  for (std::size_t s = 0; s < traces.size(); ++s) {
    const int lab = labels[s];
    MLQR_CHECK(lab >= 0 && lab < kNumLevels);
    centroid[lab] += window_mean(traces[s], late_begin, n_samples);
    ++count[lab];
  }
  for (int l = 0; l < kNumLevels; ++l)
    if (count[l] > 0) centroid[l] /= static_cast<double>(count[l]);

  MinedErrorTraces mined;
  for (std::size_t s = 0; s < traces.size(); ++s) {
    const int lab = labels[s];
    if (count[lab] == 0) continue;
    const Complexd late = window_mean(traces[s], late_begin, n_samples);

    // Nearest centroid of the late window.
    int dest = lab;
    double best = std::abs(late - centroid[lab]);
    for (int l = 0; l < kNumLevels; ++l) {
      if (l == lab || count[l] == 0) continue;
      const double d = std::abs(late - centroid[l]);
      if (d * cfg.margin < best) {
        best = d;
        dest = l;
      }
    }

    if (dest == lab) {
      mined.clean[lab].push_back(s);
      continue;
    }
    // Require the early window to still look like the labeled state —
    // otherwise this is more likely a mislabeled trace than a transition.
    const Complexd early = window_mean(traces[s], 0, early_end);
    const double d_own = std::abs(early - centroid[lab]);
    const double d_dest = std::abs(early - centroid[dest]);
    if (d_own > d_dest) {
      // Looks foreign from the start; skip entirely (neither clean nor
      // error) so it cannot contaminate a kernel.
      continue;
    }

    if (dest < lab) {
      for (std::size_t p = 0; p < mined.kRelaxPairs.size(); ++p)
        if (mined.kRelaxPairs[p] == std::pair<int, int>{lab, dest})
          mined.relaxation[p].push_back(s);
    } else {
      for (std::size_t p = 0; p < mined.kExcitePairs.size(); ++p)
        if (mined.kExcitePairs[p] == std::pair<int, int>{lab, dest})
          mined.excitation[p].push_back(s);
    }
  }
  return mined;
}

}  // namespace mlqr
