#include "mf/matched_filter.h"

#include <cmath>

#include "common/error.h"
#include "common/serialize.h"
#include "linalg/stats.h"

namespace mlqr {

namespace {

/// Per-time-bin complex mean and total (real+imag) variance over a class.
struct BinStats {
  std::vector<Complexd> mean;
  std::vector<double> var;
};

BinStats bin_stats(std::span<const BasebandTrace> traces,
                   std::span<const std::size_t> members,
                   std::size_t n_samples) {
  MLQR_CHECK_MSG(!members.empty(), "matched filter class has no traces");
  BinStats out;
  out.mean.assign(n_samples, Complexd{0.0, 0.0});
  out.var.assign(n_samples, 0.0);

  std::vector<RunningStats> re(n_samples), im(n_samples);
  for (std::size_t idx : members) {
    MLQR_CHECK(idx < traces.size());
    const BasebandTrace& tr = traces[idx];
    MLQR_CHECK_MSG(tr.size() >= n_samples,
                   "trace shorter than kernel: " << tr.size() << " < "
                                                 << n_samples);
    for (std::size_t t = 0; t < n_samples; ++t) {
      re[t].add(tr[t].real());
      im[t].add(tr[t].imag());
    }
  }
  for (std::size_t t = 0; t < n_samples; ++t) {
    out.mean[t] = {re[t].mean(), im[t].mean()};
    out.var[t] = re[t].variance() + im[t].variance();
  }
  return out;
}

}  // namespace

MatchedFilter MatchedFilter::build(std::span<const BasebandTrace> traces,
                                   std::span<const std::size_t> class_a,
                                   std::span<const std::size_t> class_b,
                                   std::size_t n_samples,
                                   std::size_t smooth_window) {
  MLQR_CHECK(n_samples > 0);
  BinStats a = bin_stats(traces, class_a, n_samples);
  BinStats b = bin_stats(traces, class_b, n_samples);

  if (smooth_window > 1) {
    auto smooth = [&](std::vector<Complexd>& xs) {
      std::vector<Complexd> out(xs.size());
      for (std::size_t t = 0; t < xs.size(); ++t) {
        const std::size_t lo = t >= smooth_window / 2 ? t - smooth_window / 2 : 0;
        const std::size_t hi = std::min(xs.size(), lo + smooth_window);
        Complexd acc{0.0, 0.0};
        for (std::size_t s = lo; s < hi; ++s) acc += xs[s];
        out[t] = acc / static_cast<double>(hi - lo);
      }
      xs = std::move(out);
    };
    smooth(a.mean);
    smooth(b.mean);
  }

  // Regularize the denominator with the median-scale variance so bins with
  // tiny sample variance (small classes) cannot dominate the kernel.
  double var_scale = 0.0;
  for (std::size_t t = 0; t < n_samples; ++t) var_scale += a.var[t] + b.var[t];
  var_scale /= static_cast<double>(2 * n_samples);
  const double eps = std::max(1e-12, 0.05 * var_scale);

  MatchedFilter mf;
  mf.kernel_.resize(n_samples);
  for (std::size_t t = 0; t < n_samples; ++t) {
    const Complexd diff = b.mean[t] - a.mean[t];
    mf.kernel_[t] = std::conj(diff) / (a.var[t] + b.var[t] + eps);
  }

  // Project both centroids through the raw kernel to derive the affine
  // normalization (a -> -0.5, b -> +0.5).
  auto project = [&mf, n_samples](const std::vector<Complexd>& mean) {
    double acc = 0.0;
    for (std::size_t t = 0; t < n_samples; ++t)
      acc += (mf.kernel_[t] * mean[t]).real();
    return acc;
  };
  auto project_trace = [&mf, n_samples](const BasebandTrace& tr) {
    double acc = 0.0;
    for (std::size_t t = 0; t < n_samples; ++t)
      acc += (mf.kernel_[t] * tr[t]).real();
    return acc;
  };
  const double pa = project(a.mean);
  const double pb = project(b.mean);
  mf.separation_ = pb - pa;
  MLQR_CHECK_MSG(std::abs(mf.separation_) > 1e-12,
                 "matched filter classes are indistinguishable");

  // Within-class spread of the projections: floors the normalization so a
  // low-SNR kernel (tiny centroid separation estimated from a handful of
  // traces) cannot explode the feature scale downstream.
  RunningStats spread;
  for (std::size_t idx : class_a)
    spread.add(project_trace(traces[idx]) - pa);
  for (std::size_t idx : class_b)
    spread.add(project_trace(traces[idx]) - pb);
  const double sigma = std::sqrt(spread.variance());
  const double denom = std::max(std::abs(mf.separation_), sigma);
  const double scale = (mf.separation_ >= 0.0 ? 1.0 : -1.0) / denom;

  for (Complexd& k : mf.kernel_) k *= scale;
  mf.bias_ = (pa + pb) * 0.5 * scale;
  return mf;
}

void MatchedFilter::save(std::ostream& os) const {
  io::write_vec_complexd(os, kernel_);
  io::write_f64(os, bias_);
  io::write_f64(os, separation_);
}

MatchedFilter MatchedFilter::load(std::istream& is) {
  MatchedFilter mf;
  mf.kernel_ = io::read_vec_complexd(is);
  MLQR_CHECK_MSG(!mf.kernel_.empty(), "corrupt matched filter: empty kernel");
  mf.bias_ = io::read_f64(is);
  mf.separation_ = io::read_f64(is);
  return mf;
}

double MatchedFilter::apply(const BasebandTrace& trace) const {
  MLQR_CHECK_MSG(trace.size() >= kernel_.size(),
                 "trace shorter than matched-filter kernel");
  double acc = 0.0;
  for (std::size_t t = 0; t < kernel_.size(); ++t)
    acc += (kernel_[t] * trace[t]).real();
  return acc - bias_;
}

}  // namespace mlqr
