#include "mf/mf_bank.h"

#include <algorithm>

#include "common/error.h"
#include "common/serialize.h"

namespace mlqr {

QubitMfBank QubitMfBank::train(std::span<const BasebandTrace> traces,
                               std::span<const int> labels,
                               std::size_t n_samples, const MfBankConfig& cfg) {
  MLQR_CHECK(traces.size() == labels.size());
  QubitMfBank bank;
  bank.cfg_ = cfg;
  bank.mined_ = mine_error_traces(traces, labels, cfg.miner);

  // Clean per-level index sets; every level must be represented so that
  // kernel shapes are well-defined.
  std::array<std::vector<std::size_t>, kNumLevels> by_level;
  for (std::size_t s = 0; s < labels.size(); ++s)
    by_level[labels[s]].push_back(s);
  // A single trace still defines a (noisy) kernel mean — RunningStats
  // reports zero variance and the denominator floor regularizes it — so CI
  // datasets where clustering mines one |2> trace for a qubit stay
  // constructible. Zero traces means the kernel shape is undefined.
  for (int l = 0; l < kNumLevels; ++l)
    MLQR_CHECK_MSG(!by_level[l].empty(),
                   "need >=1 trace for level " << l << ", got none");

  // Prefer transition-free traces for state kernels; fall back to all
  // traces of the level when the clean subset is too small.
  auto state_set = [&](int level) -> const std::vector<std::size_t>& {
    return bank.mined_.clean[level].size() >= 2 ? bank.mined_.clean[level]
                                                : by_level[level];
  };

  if (cfg.use_qmf) {
    static constexpr std::array<std::pair<int, int>, 3> kPairs{
        {{0, 1}, {0, 2}, {1, 2}}};
    for (const auto& [a, b] : kPairs)
      bank.filters_.push_back(
          MatchedFilter::build(traces, state_set(a), state_set(b), n_samples,
                               cfg.kernel_smooth_window));
  }
  if (cfg.use_rmf) {
    for (std::size_t p = 0; p < MinedErrorTraces::kRelaxPairs.size(); ++p) {
      const auto [from, to] = MinedErrorTraces::kRelaxPairs[p];
      const auto& errs = bank.mined_.relaxation[p];
      if (errs.size() >= cfg.min_error_traces) {
        // Clean `from` traces vs relaxed from->to traces.
        bank.filters_.push_back(
            MatchedFilter::build(traces, state_set(from), errs, n_samples,
                                 cfg.kernel_smooth_window));
      } else {
        // Scarce-data fallback: the state-pair kernel still reacts to the
        // destination state's signature appearing inside the trace.
        bank.filters_.push_back(
            MatchedFilter::build(traces, state_set(from), state_set(to),
                                 n_samples, cfg.kernel_smooth_window));
      }
    }
  }
  if (cfg.use_emf) {
    for (std::size_t p = 0; p < MinedErrorTraces::kExcitePairs.size(); ++p) {
      const auto [from, to] = MinedErrorTraces::kExcitePairs[p];
      const auto& errs = bank.mined_.excitation[p];
      if (errs.size() >= cfg.min_error_traces) {
        bank.filters_.push_back(
            MatchedFilter::build(traces, state_set(from), errs, n_samples,
                                 cfg.kernel_smooth_window));
      } else {
        bank.filters_.push_back(
            MatchedFilter::build(traces, state_set(from), state_set(to),
                                 n_samples, cfg.kernel_smooth_window));
      }
    }
  }
  MLQR_CHECK(bank.filters_.size() == cfg.filters_per_qubit());
  return bank;
}

namespace {

void save_bank_config(std::ostream& os, const MfBankConfig& cfg) {
  io::write_bool(os, cfg.use_qmf);
  io::write_bool(os, cfg.use_rmf);
  io::write_bool(os, cfg.use_emf);
  io::write_f64(os, cfg.miner.early_fraction);
  io::write_f64(os, cfg.miner.late_fraction);
  io::write_f64(os, cfg.miner.margin);
  io::write_u64(os, cfg.min_error_traces);
  io::write_u64(os, cfg.kernel_smooth_window);
}

MfBankConfig load_bank_config(std::istream& is) {
  MfBankConfig cfg;
  cfg.use_qmf = io::read_bool(is);
  cfg.use_rmf = io::read_bool(is);
  cfg.use_emf = io::read_bool(is);
  cfg.miner.early_fraction = io::read_f64(is);
  cfg.miner.late_fraction = io::read_f64(is);
  cfg.miner.margin = io::read_f64(is);
  cfg.min_error_traces = io::read_count(is);
  cfg.kernel_smooth_window = io::read_count(is);
  MLQR_CHECK_MSG(cfg.filters_per_qubit() > 0,
                 "corrupt bank config: every filter group disabled");
  return cfg;
}

}  // namespace

void QubitMfBank::save(std::ostream& os) const {
  save_bank_config(os, cfg_);
  io::write_u64(os, filters_.size());
  for (const MatchedFilter& f : filters_) f.save(os);
  for (const auto& idx : mined_.relaxation) io::write_vec_u64(os, idx);
  for (const auto& idx : mined_.excitation) io::write_vec_u64(os, idx);
  for (const auto& idx : mined_.clean) io::write_vec_u64(os, idx);
}

QubitMfBank QubitMfBank::load(std::istream& is) {
  QubitMfBank bank;
  bank.cfg_ = load_bank_config(is);
  const std::size_t n_filters = io::read_count(is, 64);
  MLQR_CHECK_MSG(n_filters == bank.cfg_.filters_per_qubit(),
                 "bank has " << n_filters << " filters, config implies "
                             << bank.cfg_.filters_per_qubit());
  bank.filters_.reserve(n_filters);
  for (std::size_t f = 0; f < n_filters; ++f)
    bank.filters_.push_back(MatchedFilter::load(is));
  const std::size_t kernel_len = bank.filters_.front().length();
  for (const MatchedFilter& f : bank.filters_)
    MLQR_CHECK_MSG(f.length() == kernel_len,
                   "bank filters disagree on kernel length ("
                       << f.length() << " vs " << kernel_len << ')');
  for (auto& idx : bank.mined_.relaxation) idx = io::read_vec_u64(is);
  for (auto& idx : bank.mined_.excitation) idx = io::read_vec_u64(is);
  for (auto& idx : bank.mined_.clean) idx = io::read_vec_u64(is);
  return bank;
}

void QubitMfBank::features(const BasebandTrace& trace,
                           std::vector<float>& out) const {
  for (const MatchedFilter& f : filters_)
    out.push_back(static_cast<float>(f.apply(trace)));
}

std::vector<float> cross_fit_features(std::span<const BasebandTrace> traces,
                                      std::span<const int> labels,
                                      std::size_t n_samples,
                                      const MfBankConfig& cfg,
                                      std::size_t n_folds) {
  MLQR_CHECK(traces.size() == labels.size());
  MLQR_CHECK(n_folds >= 2);
  const std::size_t per_q = cfg.filters_per_qubit();
  std::vector<float> features(traces.size() * per_q, 0.0f);

  // Stratified fold assignment: alternate within each level so every
  // fold's complement keeps >= 2 traces of every level. Levels with fewer
  // than 2*n_folds traces are not stratified: splitting them would leave
  // some fold complement with 0-1 traces of the level — a missing or
  // degenerate single-trace kernel — so their traces are pinned into every
  // fold's fit set and scored by the fold-0 bank. The self-scoring
  // inflation this function exists to avoid is unavoidable for them, but at
  // the paper's mined-trace counts (hundreds per qubit) the pin never
  // triggers; it only keeps CI-scale datasets constructible.
  constexpr std::size_t kNoFold = static_cast<std::size_t>(-1);
  std::array<std::size_t, kNumLevels> level_count{};
  for (std::size_t s = 0; s < traces.size(); ++s) {
    const int l = labels[s];
    MLQR_CHECK(l >= 0 && l < kNumLevels);
    ++level_count[l];
  }
  std::vector<std::size_t> fold(traces.size(), kNoFold);
  std::array<std::size_t, kNumLevels> counter{};
  for (std::size_t s = 0; s < traces.size(); ++s) {
    const int l = labels[s];
    if (level_count[l] >= 2 * n_folds) fold[s] = counter[l]++ % n_folds;
  }

  std::vector<float> scratch;
  for (std::size_t f = 0; f < n_folds; ++f) {
    // Complement subset for kernel training.
    std::vector<BasebandTrace> fit_traces;
    std::vector<int> fit_labels;
    for (std::size_t s = 0; s < traces.size(); ++s) {
      if (fold[s] == f) continue;
      fit_traces.push_back(traces[s]);  // Copy: bank API owns spans only
      fit_labels.push_back(labels[s]);  // during train; traces are small.
    }
    const QubitMfBank bank =
        QubitMfBank::train(fit_traces, fit_labels, n_samples, cfg);
    for (std::size_t s = 0; s < traces.size(); ++s) {
      if (fold[s] != f && !(f == 0 && fold[s] == kNoFold)) continue;
      scratch.clear();
      bank.features(traces[s], scratch);
      std::copy(scratch.begin(), scratch.end(),
                features.begin() + s * per_q);
    }
  }
  return features;
}

ChipMfBank ChipMfBank::train(
    const std::vector<std::vector<BasebandTrace>>& per_qubit_traces,
    const std::vector<std::vector<int>>& per_qubit_labels,
    std::size_t n_samples, const MfBankConfig& cfg) {
  MLQR_CHECK(!per_qubit_traces.empty());
  MLQR_CHECK(per_qubit_traces.size() == per_qubit_labels.size());
  ChipMfBank chip_bank;
  chip_bank.cfg_ = cfg;
  chip_bank.banks_.reserve(per_qubit_traces.size());
  for (std::size_t q = 0; q < per_qubit_traces.size(); ++q) {
    chip_bank.banks_.push_back(QubitMfBank::train(
        per_qubit_traces[q], per_qubit_labels[q], n_samples, cfg));
  }
  return chip_bank;
}

void ChipMfBank::adopt(const MfBankConfig& cfg,
                       std::vector<QubitMfBank> banks) {
  MLQR_CHECK(!banks.empty());
  for (const QubitMfBank& b : banks)
    MLQR_CHECK_MSG(b.feature_count() == cfg.filters_per_qubit(),
                   "adopted bank does not match the config's filter layout");
  cfg_ = cfg;
  banks_ = std::move(banks);
}

void ChipMfBank::save(std::ostream& os) const {
  save_bank_config(os, cfg_);
  io::write_u64(os, banks_.size());
  for (const QubitMfBank& b : banks_) b.save(os);
}

ChipMfBank ChipMfBank::load(std::istream& is) {
  const MfBankConfig cfg = load_bank_config(is);
  const std::size_t n_qubits = io::read_count(is, 4096);
  MLQR_CHECK_MSG(n_qubits > 0, "corrupt chip bank: zero qubits");
  std::vector<QubitMfBank> banks;
  banks.reserve(n_qubits);
  for (std::size_t q = 0; q < n_qubits; ++q)
    banks.push_back(QubitMfBank::load(is));
  ChipMfBank chip_bank;
  chip_bank.adopt(cfg, std::move(banks));  // Re-validates the filter layout.
  return chip_bank;
}

void ChipMfBank::features(const std::vector<BasebandTrace>& per_qubit_baseband,
                          std::vector<float>& out) const {
  MLQR_CHECK_MSG(per_qubit_baseband.size() == banks_.size(),
                 "expected one baseband trace per qubit");
  for (std::size_t q = 0; q < banks_.size(); ++q)
    banks_[q].features(per_qubit_baseband[q], out);
}

}  // namespace mlqr
