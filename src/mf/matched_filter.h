// Pairwise matched filters for quantum-state discrimination (paper SSV-B).
//
// For two trace classes with per-time-bin means mu_a(t), mu_b(t) and
// variances sigma_a^2(t), sigma_b^2(t), the kernel is
//     K(t) = (mu_b(t) - mu_a(t)) / (sigma_a^2(t) + sigma_b^2(t) + eps).
// (The paper's Eq. writes a variance *difference* in the denominator; with
// state-independent amplifier noise that difference is ~0 and the kernel
// diverges, so we use the standard SNR-optimal variance-sum form — the
// ISCA'23 HERQULES construction — and note the deviation in EXPERIMENTS.md.)
//
// Applying a filter is a single complex dot product against the baseband
// trace; the real part is the decision score. Kernels are affinely
// normalized so the two training-class centroids map to -0.5 and +0.5,
// which keeps downstream NN inputs well-conditioned and makes the sign of
// the score directly interpretable (positive = class b).
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "sim/iq.h"

namespace mlqr {

/// A trained two-class matched filter over complex baseband traces.
class MatchedFilter {
 public:
  MatchedFilter() = default;

  /// Builds a filter separating class a (score -0.5) from class b (+0.5).
  /// Both spans index into `traces`; every referenced trace must have at
  /// least `n_samples` entries. Throws when either class is empty.
  ///
  /// `smooth_window` boxcar-smooths the kernel along time. The resonator
  /// band-limits the real signal dynamics (tau ~ 100 ns >> the 2 ns bin),
  /// while the amplifier noise baked into small-sample mean estimates is
  /// white — smoothing therefore strips the embedded noise that would
  /// otherwise inflate scores of the very traces the kernel was fit on
  /// (rare-|2> kernels are fit from a handful of mined traces).
  static MatchedFilter build(std::span<const BasebandTrace> traces,
                             std::span<const std::size_t> class_a,
                             std::span<const std::size_t> class_b,
                             std::size_t n_samples,
                             std::size_t smooth_window = 16);

  /// Decision score for one trace (uses the first kernel-length samples).
  double apply(const BasebandTrace& trace) const;

  std::size_t length() const { return kernel_.size(); }
  const std::vector<Complexd>& kernel() const { return kernel_; }
  /// Affine offset subtracted after projection (quantized front-ends fold
  /// this into their requantization step).
  double bias() const { return bias_; }

  /// Raw (pre-normalization) separation between the training centroids —
  /// a filter-quality diagnostic (~SNR in kernel units).
  double training_separation() const { return separation_; }

  /// Binary little-endian persistence (calibration snapshot leaf): the
  /// conjugated kernel, bias and separation travel as exact f64 bit
  /// patterns, so a reloaded filter scores every trace bit-identically.
  void save(std::ostream& os) const;
  static MatchedFilter load(std::istream& is);

 private:
  std::vector<Complexd> kernel_;  ///< Conjugated, scaled kernel.
  double bias_ = 0.0;             ///< Subtracted after projection.
  double separation_ = 0.0;
};

}  // namespace mlqr
