// Per-qubit banks of qubit/relaxation/excitation matched filters and the
// chip-level feature extractor (paper Fig 4(a)-(b), Table III).
//
// Filter layout per qubit (fixed order so downstream models can rely on
// feature indices):
//   QMF  0:|0>vs|1>   1:|0>vs|2>   2:|1>vs|2>
//   RMF  3:1->0       4:2->0       5:2->1
//   EMF  6:0->1       7:0->2       8:1->2
// Groups can be disabled (HERQULES uses QMF+RMF; the Table V "NN" ablation
// uses QMF only), which shrinks the feature vector accordingly.
#pragma once

#include <array>
#include <cstddef>
#include <iosfwd>
#include <span>
#include <vector>

#include "mf/error_miner.h"
#include "mf/matched_filter.h"
#include "sim/iq.h"

namespace mlqr {

/// Which filter groups a bank trains/applies.
struct MfBankConfig {
  bool use_qmf = true;
  bool use_rmf = true;
  bool use_emf = true;
  ErrorMinerConfig miner;
  /// Minimum mined traces to fit a dedicated error kernel; below this the
  /// bank falls back to the corresponding state-pair QMF kernel shape so
  /// the feature layout stays fixed (scarce natural leakage, paper SSVI).
  std::size_t min_error_traces = 8;
  /// Temporal kernel smoothing (see MatchedFilter::build).
  std::size_t kernel_smooth_window = 16;

  std::size_t filters_per_qubit() const {
    return (use_qmf ? 3u : 0u) + (use_rmf ? 3u : 0u) + (use_emf ? 3u : 0u);
  }
};

/// Trained filter bank for a single qubit.
class QubitMfBank {
 public:
  /// Trains from that qubit's baseband traces and 3-level start-of-readout
  /// labels. Requires at least one trace for every level (a single trace
  /// yields a noisy but well-defined kernel — the CI-scale scarce-|2> case).
  static QubitMfBank train(std::span<const BasebandTrace> traces,
                           std::span<const int> labels,
                           std::size_t n_samples, const MfBankConfig& cfg);

  /// Applies every enabled filter; output size = cfg.filters_per_qubit().
  void features(const BasebandTrace& trace, std::vector<float>& out) const;

  std::size_t feature_count() const { return filters_.size(); }
  const MfBankConfig& config() const { return cfg_; }

  /// Mined-trace counts (diagnostics; paper reports 487..17,642 leakage
  /// traces across qubits).
  const MinedErrorTraces& mined() const { return mined_; }

  /// Filter accessor for inspection/tests (index per the layout above,
  /// compacted over enabled groups).
  const MatchedFilter& filter(std::size_t i) const { return filters_.at(i); }

  /// Binary little-endian persistence (calibration snapshot leaf): config,
  /// every trained filter, and the mined-trace diagnostics round-trip;
  /// features() on a reloaded bank is bit-identical to the original.
  void save(std::ostream& os) const;
  static QubitMfBank load(std::istream& is);

 private:
  MfBankConfig cfg_;
  std::vector<MatchedFilter> filters_;
  MinedErrorTraces mined_;
};

/// Cross-fitted feature extraction: every trace's filter scores are
/// computed with a bank trained on the *other* folds, so a trace's own
/// noise never appears inside the kernels that score it. Without this, the
/// handful of mined |2> traces both define the rare-state kernels and get
/// scored by them — their scores inflate by ~|noise|^2/n and a downstream
/// classifier learns thresholds fresh traces never reach.
/// Returns row-major (traces.size() x cfg.filters_per_qubit()).
std::vector<float> cross_fit_features(std::span<const BasebandTrace> traces,
                                      std::span<const int> labels,
                                      std::size_t n_samples,
                                      const MfBankConfig& cfg,
                                      std::size_t n_folds = 2);

/// All qubits' banks + shot-level feature assembly ("MF Data (9x5)" ->
/// "Merged Data (45x1)" in Fig 4).
class ChipMfBank {
 public:
  /// per_qubit_traces[q][s] is qubit q's baseband trace for shot s;
  /// per_qubit_labels[q][s] the matching 3-level label.
  static ChipMfBank train(
      const std::vector<std::vector<BasebandTrace>>& per_qubit_traces,
      const std::vector<std::vector<int>>& per_qubit_labels,
      std::size_t n_samples, const MfBankConfig& cfg);

  std::size_t num_qubits() const { return banks_.size(); }
  std::size_t features_per_qubit() const { return cfg_.filters_per_qubit(); }
  std::size_t total_features() const {
    return num_qubits() * features_per_qubit();
  }
  const MfBankConfig& config() const { return cfg_; }

  /// Concatenated features for one shot (all qubits), appended to `out`.
  void features(const std::vector<BasebandTrace>& per_qubit_baseband,
                std::vector<float>& out) const;

  const QubitMfBank& bank(std::size_t q) const { return banks_.at(q); }

  /// Adopts pre-trained per-qubit banks (all must share `cfg`). Trainers
  /// that demodulate qubit-by-qubit to bound memory use this instead of
  /// train().
  void adopt(const MfBankConfig& cfg, std::vector<QubitMfBank> banks);

  /// Binary little-endian persistence of the whole chip-level bank.
  void save(std::ostream& os) const;
  static ChipMfBank load(std::istream& is);

 private:
  MfBankConfig cfg_;
  std::vector<QubitMfBank> banks_;
};

}  // namespace mlqr
