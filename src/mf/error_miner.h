// Error-trace mining (paper SSV-B "Deciphering Error Traces").
//
// Relaxation and excitation events leave a signature inside a trace: the
// early window looks like the initial state, the late window like the
// destination state. Following the paper, traces of a labeled state whose
// late-window mean sits closer to *another* state's centroid are tagged as
// error traces for the corresponding transition. No ground-truth trajectory
// information is used — the simulator's trajectories only validate the
// miner in tests.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "sim/chip_profile.h"
#include "sim/iq.h"

namespace mlqr {

/// Transitions mined for one qubit. Indexing helpers keep the nine-filter
/// bank layout consistent everywhere.
struct MinedErrorTraces {
  /// relaxation[pair]: pair 0 = 1->0, 1 = 2->0, 2 = 2->1.
  std::array<std::vector<std::size_t>, 3> relaxation;
  /// excitation[pair]: pair 0 = 0->1, 1 = 0->2, 2 = 1->2.
  std::array<std::vector<std::size_t>, 3> excitation;
  /// clean[level]: traces of `level` with no detected transition.
  std::array<std::vector<std::size_t>, kNumLevels> clean;

  static constexpr std::array<std::pair<int, int>, 3> kRelaxPairs{
      {{1, 0}, {2, 0}, {2, 1}}};
  static constexpr std::array<std::pair<int, int>, 3> kExcitePairs{
      {{0, 1}, {0, 2}, {1, 2}}};
};

/// Configuration for the miner's early/late windows.
struct ErrorMinerConfig {
  /// Fraction of the trace treated as the "early" window (state prior) and
  /// the tail treated as "late" (destination evidence).
  double early_fraction = 0.35;
  double late_fraction = 0.35;
  /// A trace is tagged as an error only when the late window is closer to
  /// the foreign centroid by at least this margin factor (robustness to
  /// noise at low SNR).
  double margin = 1.0;
};

/// Mines error traces for one qubit from its baseband traces and 3-level
/// labels (labels = state at readout start, e.g. from spectral clustering).
MinedErrorTraces mine_error_traces(std::span<const BasebandTrace> traces,
                                   std::span<const int> labels,
                                   const ErrorMinerConfig& cfg = {});

}  // namespace mlqr
