#!/usr/bin/env python3
"""Per-tier perf-regression gate over the BENCH_*.json bench reports.

The benches (bench/pipeline_throughput, bench/streaming_throughput) write
machine-readable reports: a flat `context` object (git sha, SIMD tier,
knobs) plus one flat row per swept configuration.  This script compares a
fresh set of those reports against the checked-in per-tier baseline
(tools/perf_baseline.json) and fails when any gated row slipped by more
than the threshold (default 15%) — shots/sec falling or p99 latency
rising.

Baselines are recorded per SIMD tier (`context.simd_tier`): an sse2 run is
never compared against avx512-vnni numbers.  Reports from a tier the
baseline has no entry for are skipped with a warning, so a new
microarchitecture cannot fail CI before a baseline exists for it.

Absolute shots/sec depends on the machine, so by default the gate first
estimates a per-metric machine-speed factor — the *median* of
current/baseline ratios across all rows of the report — divides the
fresh values by it, and gates the result.  A uniformly slower CI host
moves every row and the median together and passes; a regression in one
(or a few) configurations barely moves the median and fails.  The
median's breakdown point is the known limit: a code change that slows
the *majority* of rows by the same factor is indistinguishable from a
slower machine and passes normalized gating — layer `--absolute` (raw
values, no factor) on a dedicated same-machine runner to close that
hole.

Usage:
  # Gate fresh reports against the checked-in baseline:
  python3 tools/check_perf_regression.py BENCH_pipeline_throughput.json ...

  # Refresh the baseline for the tier(s) the reports were measured on:
  python3 tools/check_perf_regression.py --update-baseline BENCH_*.json

  # Prove the gate trips on injected regressions (run in CI before use):
  python3 tools/check_perf_regression.py --self-test

Exit status: 0 = pass (or nothing gateable), 1 = regression, 2 = usage.
"""

from __future__ import annotations

import argparse
import copy
import json
import math
import os
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "perf_baseline.json")
DEFAULT_THRESHOLD = 0.15

# Per-bench gating schema.  `key` names the row fields that identify a
# configuration; `higher_better` / `lower_better` name the gated metrics;
# `gate_context` must match the report context for its rows to be gated
# at all (streaming soak runs, for example, are load tests, not perf
# baselines).
SCHEMAS = {
    "pipeline_throughput": {
        "key": ("backend", "mode", "batch", "workers"),
        "higher_better": ("shots_per_sec",),
        "lower_better": ("p99_us",),
        "gate_context": {},
    },
    "streaming_throughput": {
        "key": ("shards", "load_fraction", "target_rate_zero"),
        "higher_better": ("achieved_rate",),
        "lower_better": ("p99_us",),
        "gate_context": {"mode": "grid"},
    },
}


def _derive_fields(bench, row):
    """Adds schema-level derived key fields to a raw report row."""
    row = dict(row)
    if bench == "streaming_throughput":
        # The unpaced row reuses load_fraction=1.0; only target_rate==0
        # distinguishes it from the paced frac=1.0 row.
        row["target_rate_zero"] = row.get("target_rate", 0.0) == 0.0
    return row


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "context" not in doc or "rows" not in doc:
        raise ValueError(f"{path}: not a BENCH report (no context/rows)")
    return doc


def report_to_entry(doc):
    """Reduces a BENCH report to the (bench, tier, keyed rows) the gate
    needs, or None when the report is not gateable under its schema."""
    ctx = doc["context"]
    bench = ctx.get("bench")
    schema = SCHEMAS.get(bench)
    if schema is None:
        return None
    for k, v in schema["gate_context"].items():
        if ctx.get(k) != v:
            return None
    tier = ctx.get("simd_tier")
    if not tier:
        return None
    rows = {}
    for raw in doc["rows"]:
        row = _derive_fields(bench, raw)
        key = tuple(row.get(k) for k in schema["key"])
        metrics = {}
        for m in schema["higher_better"] + schema["lower_better"]:
            v = row.get(m)
            if isinstance(v, (int, float)) and math.isfinite(v):
                metrics[m] = float(v)
        rows[key] = metrics
    return {"bench": bench, "tier": tier, "rows": rows,
            "fast_mode": bool(ctx.get("fast_mode", False))}


def key_str(schema, key):
    return ", ".join(f"{n}={v}" for n, v in zip(schema["key"], key))


def _machine_factors(schema, baseline_rows, current_rows):
    """Per-metric median of current/baseline ratios across all shared
    rows — the machine-speed estimate normalized gating divides out."""
    factors = {}
    for metric in schema["higher_better"] + schema["lower_better"]:
        ratios = []
        for key, base_metrics in baseline_rows.items():
            base_v = base_metrics.get(metric)
            cur_v = current_rows.get(key, {}).get(metric)
            if base_v and cur_v and base_v > 0 and cur_v > 0:
                ratios.append(cur_v / base_v)
        if ratios:
            ratios.sort()
            mid = len(ratios) // 2
            factors[metric] = ratios[mid] if len(ratios) % 2 else \
                (ratios[mid - 1] + ratios[mid]) / 2.0
        else:
            factors[metric] = 1.0
    return factors


def compare_entry(entry, baseline_rows, threshold, absolute, out):
    """Gates one report against its baseline rows.  Returns failure count."""
    bench = entry["bench"]
    schema = SCHEMAS[bench]
    failures = 0

    def fail(msg):
        nonlocal failures
        failures += 1
        out(f"  FAIL [{bench}/{entry['tier']}] {msg}")

    factors = {m: 1.0 for m in schema["higher_better"] + schema["lower_better"]} \
        if absolute else _machine_factors(schema, baseline_rows, entry["rows"])

    for key, base_metrics in baseline_rows.items():
        cur_metrics = entry["rows"].get(key)
        if cur_metrics is None:
            fail(f"row missing from fresh report: {key_str(schema, key)}")
            continue
        for metric, base_v in base_metrics.items():
            cur_v = cur_metrics.get(metric)
            if cur_v is None:
                fail(f"metric {metric} missing: {key_str(schema, key)}")
                continue
            if base_v <= 0 or factors[metric] <= 0:
                continue
            cur_cmp = cur_v / factors[metric]
            higher_better = metric in schema["higher_better"]
            change = (cur_cmp - base_v) / base_v
            regressed = change < -threshold if higher_better \
                else change > threshold
            if regressed:
                norm = "" if absolute else \
                    f" (machine factor {factors[metric]:.3f} divided out)"
                fail(f"{key_str(schema, key)}: {metric} "
                     f"{'fell' if higher_better else 'rose'} "
                     f"{abs(change) * 100.0:.1f}%{norm} "
                     f"({base_v:.4g} -> {cur_cmp:.4g}, limit "
                     f"{threshold * 100.0:.0f}%)")
    return failures


def run_gate(report_paths, baseline_path, threshold, absolute, out=print):
    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        out(f"[perf-gate] WARN: no baseline at {baseline_path}; skipping "
            "(run --update-baseline to create one)")
        return 0

    failures = 0
    gated = 0
    for path in report_paths:
        entry = report_to_entry(load_report(path))
        if entry is None:
            out(f"[perf-gate] skip {path}: not a gateable report")
            continue
        tier_table = baseline.get("tiers", {}).get(entry["tier"])
        if tier_table is None or entry["bench"] not in tier_table:
            out(f"[perf-gate] WARN: no {entry['bench']} baseline for tier "
                f"'{entry['tier']}'; skipping {path} "
                "(refresh with --update-baseline on this machine class)")
            continue
        base = tier_table[entry["bench"]]
        if base.get("fast_mode") != entry["fast_mode"]:
            out(f"[perf-gate] WARN: fast_mode mismatch for {path} "
                f"(baseline {base.get('fast_mode')}, report "
                f"{entry['fast_mode']}); skipping")
            continue
        gated += 1
        baseline_rows = {tuple(r["key"]): r["metrics"]
                         for r in base["rows"]}
        n = compare_entry(entry, baseline_rows, threshold, absolute, out)
        if n == 0:
            out(f"[perf-gate] PASS {path} ({entry['bench']}, tier "
                f"{entry['tier']}, {len(baseline_rows)} gated rows)")
        failures += n
    if gated == 0:
        out("[perf-gate] WARN: nothing was gated")
    return 1 if failures else 0


def update_baseline(report_paths, baseline_path, out=print):
    try:
        with open(baseline_path, "r", encoding="utf-8") as f:
            baseline = json.load(f)
    except FileNotFoundError:
        baseline = {"comment": [
            "Per-SIMD-tier perf baseline for tools/check_perf_regression.py.",
            "Refresh with: python3 tools/check_perf_regression.py "
            "--update-baseline BENCH_*.json",
            "Keys are (row key fields, metrics) per bench; see the script "
            "for the gating schema."], "tiers": {}}

    updated = 0
    for path in report_paths:
        entry = report_to_entry(load_report(path))
        if entry is None:
            out(f"[perf-gate] skip {path}: not a gateable report")
            continue
        rows = [{"key": list(k), "metrics": m}
                for k, m in sorted(entry["rows"].items(),
                                   key=lambda kv: str(kv[0]))]
        baseline.setdefault("tiers", {}).setdefault(entry["tier"], {})[
            entry["bench"]] = {"fast_mode": entry["fast_mode"], "rows": rows}
        out(f"[perf-gate] baseline[{entry['tier']}][{entry['bench']}] <- "
            f"{len(rows)} rows from {path}")
        updated += 1
    if not updated:
        out("[perf-gate] no gateable reports; baseline unchanged")
        return 2
    with open(baseline_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f, indent=1, sort_keys=True)
        f.write("\n")
    out(f"[perf-gate] wrote {baseline_path}")
    return 0


# ---- self-test ------------------------------------------------------------

def _synthetic_report(tier="sse2", scale=1.0, mutate=None):
    """A small but structurally faithful pipeline_throughput report.
    `scale` models machine speed (multiplies every rate, divides every
    latency); `mutate(rows)` injects a targeted regression."""
    rows = []
    for backend in ("OURS", "OURS-INT16", "OURS-INT8"):
        for mode in ("per-shot", "batched"):
            for batch in (1, 64):
                for workers in (1, 4):
                    base = 50_000.0 * (1.5 if "INT" in backend else 1.0)
                    base *= 1.8 if mode == "batched" and batch >= 64 else 1.0
                    base *= workers
                    rows.append({
                        "backend": backend, "mode": mode, "batch": batch,
                        "workers": workers,
                        "shots_per_sec": base * scale,
                        "p50_us": 40.0 / scale, "p99_us": 90.0 / scale,
                    })
    if mutate:
        mutate(rows)
    return {"context": {"bench": "pipeline_throughput", "git_sha": "selftest",
                        "simd_tier": tier, "fast_mode": True},
            "rows": rows}


def self_test(out=print):
    import tempfile

    def write(doc, d, name):
        path = os.path.join(d, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def pick(rows, backend, mode, batch, workers):
        for r in rows:
            if (r["backend"], r["mode"], r["batch"], r["workers"]) == \
                    (backend, mode, batch, workers):
                return r
        raise AssertionError("self-test row lookup failed")

    quiet = lambda *a, **k: None
    checks = []

    with tempfile.TemporaryDirectory() as d:
        base_path = write({}, d, "unused.json")
        os.remove(base_path)
        baseline_path = os.path.join(d, "baseline.json")
        ref = write(_synthetic_report(), d, "ref.json")
        assert update_baseline([ref], baseline_path, out=quiet) == 0

        def gate(doc, absolute=False):
            path = write(doc, d, "cur.json")
            return run_gate([path], baseline_path, DEFAULT_THRESHOLD,
                            absolute, out=quiet)

        # Identical run passes.
        checks.append(("identical run passes",
                       gate(_synthetic_report()) == 0))
        # A uniformly 2x-slower machine passes under normalization...
        checks.append(("uniformly slower machine passes (normalized)",
                       gate(_synthetic_report(scale=0.5)) == 0))
        # ...and fails in --absolute mode.
        checks.append(("uniformly slower machine fails (--absolute)",
                       gate(_synthetic_report(scale=0.5),
                            absolute=True) == 1))

        # Injected 20% throughput drop on one batched row fails.
        def drop_tput(rows):
            pick(rows, "OURS-INT8", "batched", 64, 4)["shots_per_sec"] *= 0.80
        checks.append(("20% shots/s drop fails",
                       gate(_synthetic_report(mutate=drop_tput)) == 1))

        # Injected 20% p99 rise fails.
        def raise_p99(rows):
            pick(rows, "OURS", "batched", 64, 1)["p99_us"] *= 1.20
        checks.append(("20% p99 rise fails",
                       gate(_synthetic_report(mutate=raise_p99)) == 1))

        # A slowdown confined to the glue-path row (everything else at
        # full speed) barely moves the median and still fails.
        def slow_ref(rows):
            pick(rows, "OURS", "per-shot", 1, 1)["shots_per_sec"] *= 0.5
        checks.append(("single-row slowdown fails",
                       gate(_synthetic_report(mutate=slow_ref)) == 1))

        # A 10% drop stays inside the 15% band.
        def small_drop(rows):
            pick(rows, "OURS-INT16", "per-shot", 64, 4)["shots_per_sec"] *= 0.9
        checks.append(("10% drop passes",
                       gate(_synthetic_report(mutate=small_drop)) == 0))

        # A configuration vanishing from the fresh report fails (silent
        # coverage loss must not read as a pass).
        def drop_row(rows):
            rows.remove(pick(rows, "OURS-INT8", "batched", 64, 4))
        checks.append(("missing row fails",
                       gate(_synthetic_report(mutate=drop_row)) == 1))

        # Unknown tier skips with a warning, not a failure.
        checks.append(("unknown tier skips",
                       gate(_synthetic_report(tier="riscv-rvv")) == 0))

        # fast_mode mismatch skips (full-scale rows vs CI-scale baseline
        # measure different work).
        full = _synthetic_report()
        full["context"]["fast_mode"] = False
        checks.append(("fast_mode mismatch skips", gate(full) == 0))

    ok = all(passed for _, passed in checks)
    for name, passed in checks:
        out(f"[perf-gate self-test] {'ok' if passed else 'FAIL'}: {name}")
    out(f"[perf-gate self-test] {'PASS' if ok else 'FAIL'} "
        f"({sum(p for _, p in checks)}/{len(checks)})")
    return 0 if ok else 1


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("reports", nargs="*", help="BENCH_*.json files to gate")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                    help="fractional slip that fails the gate (default 0.15)")
    ap.add_argument("--absolute", action="store_true",
                    help="gate raw values instead of reference-normalized "
                         "ratios (same-machine A/B runs)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="record the reports as the new baseline for their "
                         "tier instead of gating")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on injected regressions")
    args = ap.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.reports:
        ap.print_usage()
        print("error: no BENCH reports given", file=sys.stderr)
        return 2
    if args.update_baseline:
        return update_baseline(args.reports, args.baseline)
    return run_gate(args.reports, args.baseline, args.threshold,
                    args.absolute)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
