#!/usr/bin/env python3
"""Repo-invariant lints that neither the compiler nor clang-tidy can express.

Three checks, all cheap enough for every CI run and every pre-commit:

  1. snapshot-kinds: the SnapshotKind enum in src/pipeline/snapshot.h is an
     on-disk format registry. Its wire values are pinned in
     tools/snapshot_kinds.manifest; this lint fails if an existing entry was
     renumbered, renamed, or removed (append-only contract), or if a new
     enum entry was not added to the manifest, or if anything claims a
     reserved value.

  2. nondeterminism: src/ must stay bit-reproducible. Calls to rand(),
     std::random_device, wall-clock time sources (time(), gettimeofday,
     system_clock) are banned outside src/common/timer.h (which owns the
     steady-clock wrappers). Seeded mlqr RNGs and steady_clock are fine.

  3. pipeline-rng: the serving path (src/pipeline/) must classify
     deterministically — even the seeded mlqr Rng is off-limits there,
     except in fault_injection.{h,cpp}, which is the one sanctioned
     seeded-randomness site (its fault schedules are pure functions of
     (seed, call index)). The wall-clock/random_device ban from check 2
     still applies to those files.

Exit status: 0 = all invariants hold, 1 = violation (details on stderr),
2 = usage / environment error. `--self-test` proves the checks can fail by
running them against deliberately broken copies in a temp dir.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
SNAPSHOT_HEADER = pathlib.Path("src/pipeline/snapshot.h")
MANIFEST = pathlib.Path("tools/snapshot_kinds.manifest")

# ---------------------------------------------------------------------------
# Check 1: snapshot kind registry is append-only against the manifest.
# ---------------------------------------------------------------------------

ENUM_RE = re.compile(
    r"enum\s+class\s+SnapshotKind\s*:\s*std::uint8_t\s*\{(?P<body>.*?)\}\s*;",
    re.DOTALL,
)
ENUMERATOR_RE = re.compile(r"^\s*(?P<name>k\w+)\s*=\s*(?P<value>\d+)\s*,")


def parse_enum(header_text: str) -> dict[str, int]:
    m = ENUM_RE.search(header_text)
    if m is None:
        raise SystemExit(
            f"error: no `enum class SnapshotKind : std::uint8_t` found in "
            f"{SNAPSHOT_HEADER} — if the registry moved, update "
            f"tools/lint_invariants.py alongside it"
        )
    kinds: dict[str, int] = {}
    for line in m.group("body").splitlines():
        em = ENUMERATOR_RE.match(line)
        if em:
            kinds[em.group("name")] = int(em.group("value"))
    if not kinds:
        raise SystemExit(
            f"error: SnapshotKind in {SNAPSHOT_HEADER} has no `kName = N,` "
            f"enumerators the lint can parse (explicit values are required: "
            f"they are wire bytes)"
        )
    return kinds


def parse_manifest(manifest_text: str) -> tuple[dict[str, int], set[int]]:
    pinned: dict[str, int] = {}
    reserved: set[int] = set()
    for lineno, raw in enumerate(manifest_text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        m = re.fullmatch(r"(?P<name>\w+)\s*=\s*(?P<value>\d+)", line)
        if m is None:
            raise SystemExit(
                f"error: {MANIFEST}:{lineno}: unparseable line {raw!r} "
                f"(want `name = value`)"
            )
        name, value = m.group("name"), int(m.group("value"))
        if name == "reserved":
            reserved.add(value)
        else:
            pinned[name] = value
    return pinned, reserved


def check_snapshot_kinds(root: pathlib.Path) -> list[str]:
    kinds = parse_enum((root / SNAPSHOT_HEADER).read_text(encoding="utf-8"))
    pinned, reserved = parse_manifest(
        (root / MANIFEST).read_text(encoding="utf-8")
    )
    errors = []
    for name, value in pinned.items():
        if name not in kinds:
            errors.append(
                f"{SNAPSHOT_HEADER}: pinned snapshot kind {name} = {value} "
                f"was removed or renamed — wire values are append-only"
            )
        elif kinds[name] != value:
            errors.append(
                f"{SNAPSHOT_HEADER}: snapshot kind {name} renumbered "
                f"{value} -> {kinds[name]} — existing snapshots on disk "
                f"would load as the wrong design"
            )
    for name, value in kinds.items():
        if name in pinned:
            continue
        if value in reserved:
            errors.append(
                f"{SNAPSHOT_HEADER}: new snapshot kind {name} claims "
                f"reserved value {value} (see {MANIFEST} for what it is "
                f"being held for)"
            )
        elif value in pinned.values():
            errors.append(
                f"{SNAPSHOT_HEADER}: new snapshot kind {name} reuses wire "
                f"value {value}, already pinned to another kind"
            )
        else:
            errors.append(
                f"{SNAPSHOT_HEADER}: snapshot kind {name} = {value} is not "
                f"in {MANIFEST} — append it there in the same change to pin "
                f"the wire value"
            )
    return errors


# ---------------------------------------------------------------------------
# Check 2: no nondeterminism escapes in src/.
# ---------------------------------------------------------------------------

# Each entry: (human label, regex matched against comment-stripped code).
NONDET_PATTERNS = [
    ("rand()/srand()", re.compile(r"\b(?:std::)?s?rand\s*\(")),
    ("std::random_device", re.compile(r"\brandom_device\b")),
    ("wall-clock time()", re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&)")),
    ("gettimeofday()", re.compile(r"\bgettimeofday\s*\(")),
    ("clock()", re.compile(r"(?<![\w:.>])clock\s*\(\s*\)")),
    ("std::chrono::system_clock", re.compile(r"\bsystem_clock\b")),
]

# timer.h owns the clock wrappers (steady_clock only, but it is the one
# place allowed to name clock types at all).
NONDET_EXEMPT = {pathlib.Path("src/common/timer.h")}

LINE_COMMENT_RE = re.compile(r"//.*$")
BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_RE = re.compile(r'"(?:\\.|[^"\\])*"')


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line numbers."""

    def blank(m: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    text = BLOCK_COMMENT_RE.sub(blank, text)
    text = STRING_RE.sub(blank, text)
    return "\n".join(LINE_COMMENT_RE.sub("", ln) for ln in text.splitlines())


def check_nondeterminism(root: pathlib.Path) -> list[str]:
    errors = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in {".h", ".cpp"}:
            continue
        rel = path.relative_to(root)
        if rel in NONDET_EXEMPT:
            continue
        code = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(code.splitlines(), 1):
            for label, pattern in NONDET_PATTERNS:
                if pattern.search(line):
                    errors.append(
                        f"{rel}:{lineno}: {label} — src/ must stay "
                        f"bit-reproducible; use a seeded mlqr RNG, or "
                        f"steady_clock via common/timer.h for durations"
                    )
    return errors


# ---------------------------------------------------------------------------
# Check 3: no RNG on the serving path outside the fault-injection harness.
# ---------------------------------------------------------------------------

# The one place under src/pipeline/ allowed to draw (seeded) random numbers.
PIPELINE_RNG_EXEMPT = {
    pathlib.Path("src/pipeline/fault_injection.h"),
    pathlib.Path("src/pipeline/fault_injection.cpp"),
}

# Rng as a token; include directives are quoted strings, already blanked by
# strip_comments, so this fires on actual uses, not on `#include`.
PIPELINE_RNG_RE = re.compile(r"\bRng\b")


def check_pipeline_rng(root: pathlib.Path) -> list[str]:
    errors = []
    for path in sorted((root / "src" / "pipeline").rglob("*")):
        if path.suffix not in {".h", ".cpp"}:
            continue
        rel = path.relative_to(root)
        if rel in PIPELINE_RNG_EXEMPT:
            continue
        code = strip_comments(path.read_text(encoding="utf-8"))
        for lineno, line in enumerate(code.splitlines(), 1):
            if PIPELINE_RNG_RE.search(line):
                errors.append(
                    f"{rel}:{lineno}: Rng on the serving path — "
                    f"src/pipeline/ must classify deterministically; only "
                    f"fault_injection.{{h,cpp}} may draw seeded randomness"
                )
    return errors


# ---------------------------------------------------------------------------
# Driver + self-test.
# ---------------------------------------------------------------------------


def run_checks(root: pathlib.Path) -> int:
    errors = (
        check_snapshot_kinds(root)
        + check_nondeterminism(root)
        + check_pipeline_rng(root)
    )
    for e in errors:
        print(f"lint_invariants: {e}", file=sys.stderr)
    if not errors:
        print("lint_invariants: all invariants hold")
    return 1 if errors else 0


def self_test() -> int:
    """Tamper with scratch copies and assert every mutation is caught."""
    header = (REPO / SNAPSHOT_HEADER).read_text(encoding="utf-8")
    mutations = {
        "renumbered kind": header.replace("kFnn = 2,", "kFnn = 9,"),
        "removed kind": header.replace("kGaussian = 4,", ""),
        "renamed kind": header.replace("kHerqules = 3,", "kHercules = 3,"),
        "reserved value claimed": header.replace(
            "kInt8 = 5,", "kInt8 = 5,\n  kShadow = 6,"
        ),
        "unpinned new kind": header.replace(
            "kInt8 = 5,", "kInt8 = 5,\n  kShadow = 7,"
        ),
    }
    failures = []
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as tmp:
        root = pathlib.Path(tmp)
        (root / SNAPSHOT_HEADER).parent.mkdir(parents=True)
        (root / MANIFEST).parent.mkdir(parents=True)
        (root / MANIFEST).write_text(
            (REPO / MANIFEST).read_text(encoding="utf-8"), encoding="utf-8"
        )
        src_common = root / "src" / "common"
        src_common.mkdir(parents=True, exist_ok=True)

        # Baseline: pristine copies must pass.
        (root / SNAPSHOT_HEADER).write_text(header, encoding="utf-8")
        if check_snapshot_kinds(root) or check_nondeterminism(root):
            failures.append("pristine copy failed the checks")

        for label, mutated in mutations.items():
            assert mutated != header, f"mutation {label!r} was a no-op"
            (root / SNAPSHOT_HEADER).write_text(mutated, encoding="utf-8")
            if not check_snapshot_kinds(root):
                failures.append(f"mutation not caught: {label}")
        (root / SNAPSHOT_HEADER).write_text(header, encoding="utf-8")

        nondet_snippets = {
            "rand()": "int f() { return rand(); }\n",
            "std::random_device": "#include <random>\nstd::random_device rd;\n",
            "system_clock": "auto t = std::chrono::system_clock::now();\n",
            "time(nullptr)": "long f() { return time(nullptr); }\n",
        }
        probe = src_common / "selftest_probe.cpp"
        for label, snippet in nondet_snippets.items():
            probe.write_text(snippet, encoding="utf-8")
            if not check_nondeterminism(root):
                failures.append(f"nondeterminism not caught: {label}")
        # Commented-out occurrences must NOT fire.
        probe.write_text("// rand() is banned here\n", encoding="utf-8")
        if check_nondeterminism(root):
            failures.append("false positive on a comment mentioning rand()")
        # The timer.h exemption must hold.
        probe.unlink()
        (src_common / "timer.h").write_text(
            "auto t = std::chrono::system_clock::now();\n", encoding="utf-8"
        )
        if check_nondeterminism(root):
            failures.append("timer.h exemption not honoured")
        (src_common / "timer.h").unlink()

        # Check 3: Rng anywhere else under src/pipeline/ must be caught...
        pipeline_probe = root / "src" / "pipeline" / "selftest_probe.cpp"
        pipeline_probe.write_text(
            "#include \"common/rng.h\"\nmlqr::Rng rng(42);\n",
            encoding="utf-8",
        )
        if not check_pipeline_rng(root):
            failures.append("pipeline Rng use not caught")
        # ...while comments, the include string itself, and identifiers that
        # merely contain the letters must not fire...
        pipeline_probe.write_text(
            "#include \"common/rng.h\"\n"
            "// Rng is banned here\n"
            "int seeded_RngLike_count = 0;\n",
            encoding="utf-8",
        )
        if check_pipeline_rng(root):
            failures.append("false positive: comment/include/substring Rng")
        pipeline_probe.unlink()
        # ...the recalibration controller is explicitly NOT exempt (the
        # retrain/hot-swap loop must stay a pure function of its inputs —
        # this pins that the exemption set gained no new entries)...
        recal_probe = root / "src" / "pipeline" / "recalibration.cpp"
        recal_probe.write_text("mlqr::Rng rng(42);\n", encoding="utf-8")
        if not check_pipeline_rng(root):
            failures.append("pipeline Rng in recalibration.cpp not caught")
        recal_probe.unlink()
        # ...and fault_injection.{h,cpp} stay the sanctioned site.
        for name in ("fault_injection.h", "fault_injection.cpp"):
            (root / "src" / "pipeline" / name).write_text(
                "mlqr::Rng rng(42);\n", encoding="utf-8"
            )
        if check_pipeline_rng(root):
            failures.append("fault_injection exemption not honoured")
        for name in ("fault_injection.h", "fault_injection.cpp"):
            (root / "src" / "pipeline" / name).unlink()

    for f in failures:
        print(f"lint_invariants --self-test: FAIL: {f}", file=sys.stderr)
    if not failures:
        print(
            f"lint_invariants --self-test: ok "
            f"({len(mutations)} registry mutations, "
            f"{len(nondet_snippets)} nondeterminism probes, and the "
            f"pipeline-rng probes all caught)"
        )
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=REPO,
        help="repo root to lint (default: the checkout containing this script)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the lints fail on deliberately broken inputs, then exit",
    )
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if not (args.root / SNAPSHOT_HEADER).is_file():
        print(f"error: {args.root} does not look like the repo root", file=sys.stderr)
        return 2
    return run_checks(args.root)


if __name__ == "__main__":
    sys.exit(main())
