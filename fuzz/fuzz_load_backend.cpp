// libFuzzer harness for the snapshot decoder: the fuzzer mutates whole
// snapshot byte streams (seeded from fuzz/corpus/, one valid snapshot per
// registered kind) and feeds them to load_backend. The contract — shared
// with tests/test_snapshot_fuzz.cpp — is that any input either decodes
// into a serviceable snapshot or throws mlqr::Error; a crash, hang,
// over-allocation, or sanitizer report is a finding.
//
// Build:  CC=clang CXX=clang++ cmake -B build -S . -DMLQR_FUZZ=ON \
//             -DMLQR_SANITIZE=ON
// Run:    ./build/fuzz_load_backend -rss_limit_mb=4096 fuzz/corpus
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "common/error.h"
#include "pipeline/snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::stringstream ss(
      std::string(reinterpret_cast<const char*>(data), size));
  try {
    const mlqr::BackendSnapshot snap = mlqr::load_backend(ss);
    // A stream that decodes must yield a fully serviceable snapshot.
    (void)snap.backend();
    (void)snap.name();
    (void)snap.num_qubits();
  } catch (const mlqr::Error&) {
    // Rejected hostile input: the expected outcome for most mutants.
  }
  return 0;
}
